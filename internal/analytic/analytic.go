// Package analytic implements the closed-form results from the SleepScale
// paper's Appendix: average power E[P], mean response time E[R], and the
// response-time tail Pr(R ≥ d) for a single-server FCFS queue with Poisson
// arrivals, exponential service, linear DVFS, and a sequence of n low-power
// states (Pᵢ, τᵢ, wᵢ). It also carries the M/G/1 extension the Appendix
// mentions (general service times via Pollaczek–Khinchine plus Welch's
// exceptional-first-service term).
//
// These formulas are what the paper uses to verify the simulator ("results
// obtained from the closed-form expressions match those presented in
// Figure 1") and what the idealized model in Figure 6 computes. Tests in
// this package cross-validate every formula against internal/queue.
package analytic

import (
	"errors"
	"fmt"
	"math"
)

// SleepState mirrors the paper's (Pᵢ, τᵢ, wᵢ) triple for low-power state i.
type SleepState struct {
	// Power is Pᵢ, watts while resident.
	Power float64
	// Enter is τᵢ, seconds after the queue empties at which the state is
	// entered. Must be non-decreasing across the sequence.
	Enter float64
	// Wake is wᵢ, the average wake-up latency in seconds.
	Wake float64
}

// Model is the M/M/1-with-sleep-states system of §4.3 and the Appendix.
type Model struct {
	// Lambda is the job arrival rate λ (jobs/second).
	Lambda float64
	// Mu is the maximum service rate µ (jobs/second at f = 1).
	Mu float64
	// F is the DVFS factor f ∈ (0, 1]; the effective rate is µ·f.
	F float64
	// ActivePower is P₀, the power while serving, waking, or idling before
	// the first sleep state, at this frequency (watts).
	ActivePower float64
	// States is the low-power sequence, shallow to deep.
	States []SleepState
}

// ErrUnstable reports λ ≥ µ·f.
var ErrUnstable = errors.New("analytic: unstable queue (λ ≥ µf)")

// ErrBadModel reports invalid model parameters.
var ErrBadModel = errors.New("analytic: invalid model")

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.Lambda <= 0 || m.Mu <= 0 {
		return fmt.Errorf("%w: λ=%g µ=%g", ErrBadModel, m.Lambda, m.Mu)
	}
	if !(m.F > 0 && m.F <= 1) {
		return fmt.Errorf("%w: f=%g", ErrBadModel, m.F)
	}
	if m.Lambda >= m.Mu*m.F {
		return fmt.Errorf("%w: λ=%g ≥ µf=%g", ErrUnstable, m.Lambda, m.Mu*m.F)
	}
	prev := math.Inf(-1)
	for i, s := range m.States {
		if s.Enter < 0 || s.Enter < prev {
			return fmt.Errorf("%w: state %d enter %g not non-decreasing", ErrBadModel, i, s.Enter)
		}
		if s.Power < 0 || s.Wake < 0 {
			return fmt.Errorf("%w: state %d negative power/wake", ErrBadModel, i)
		}
		prev = s.Enter
	}
	return nil
}

// stateWeight returns e^{−λτᵢ} − e^{−λτᵢ₊₁} for i < n and e^{−λτₙ} for the
// last state: the probability that an exponential idle period of rate λ ends
// while the server occupies state i.
func (m Model) stateWeight(i int) float64 {
	w := math.Exp(-m.Lambda * m.States[i].Enter)
	if i+1 < len(m.States) {
		w -= math.Exp(-m.Lambda * m.States[i+1].Enter)
	}
	return w
}

// wakeMoment returns E[D^α] = Σᵢ wᵢ^α · weight(i): the α-th moment of the
// wake-up delay experienced by the job that ends an idle period.
func (m Model) wakeMoment(alpha float64) float64 {
	var sum float64
	for i, s := range m.States {
		if s.Wake == 0 {
			continue
		}
		sum += math.Pow(s.Wake, alpha) * m.stateWeight(i)
	}
	return sum
}

// CycleLength returns L, the renewal cycle length from the Appendix:
//
//	L = [µf + µfλ·E[D]] / (λ(µf − λ))
//
// where E[D] is the mean wake delay per cycle.
func (m Model) CycleLength() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	muf := m.Mu * m.F
	return (muf + muf*m.Lambda*m.wakeMoment(1)) / (m.Lambda * (muf - m.Lambda)), nil
}

// MeanPower returns E[P] from the Appendix:
//
//	E[P] = (1/λL)·[Σᵢ Pᵢ(e^{−λτᵢ} − e^{−λτᵢ₊₁}) + Pₙe^{−λτₙ}]
//	       + P₀·(1 − e^{−λτ₁}/(λL))
//
// With no sleep states the server idles at P₀ and E[P] = P₀.
func (m Model) MeanPower() (float64, error) {
	L, err := m.CycleLength()
	if err != nil {
		return 0, err
	}
	if len(m.States) == 0 {
		return m.ActivePower, nil
	}
	lamL := m.Lambda * L
	var sleep float64
	for i, s := range m.States {
		sleep += s.Power * m.stateWeight(i)
	}
	tau1 := m.States[0].Enter
	return sleep/lamL + m.ActivePower*(1-math.Exp(-m.Lambda*tau1)/lamL), nil
}

// MeanResponse returns E[R] from the Appendix:
//
//	E[R] = 1/(µf − λ) + (2E[D] + λE[D²]) / (2(1 + λE[D]))
//
// Welch's exceptional-first-service result applied to the wake delay D.
func (m Model) MeanResponse() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	base := 1 / (m.Mu*m.F - m.Lambda)
	d1 := m.wakeMoment(1)
	d2 := m.wakeMoment(2)
	return base + (2*d1+m.Lambda*d2)/(2*(1+m.Lambda*d1)), nil
}

// TailResponse returns Pr(R ≥ d) from the Appendix:
//
//	Pr(R ≥ d) = [e^{−(µf−λ)d} − w₁(µf−λ)e^{−d/w₁}] / (1 − w₁(µf−λ))
//
// which is exact for a single low-power state entered immediately (τ₁ = 0)
// with exponentially distributed wake-up latency of mean w₁; it is the tail
// of Exp(µf−λ) + Exp(1/w₁). With w₁ = 0 it reduces to the M/M/1 tail
// e^{−(µf−λ)d}. Models with more than one state are rejected — the paper
// gives no closed form for that case (use the simulator).
func (m Model) TailResponse(d float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if len(m.States) > 1 {
		return 0, fmt.Errorf("%w: tail formula needs ≤1 sleep state, have %d",
			ErrBadModel, len(m.States))
	}
	if len(m.States) == 1 && m.States[0].Enter != 0 {
		return 0, fmt.Errorf("%w: tail formula needs τ₁ = 0, have %g",
			ErrBadModel, m.States[0].Enter)
	}
	if d <= 0 {
		return 1, nil
	}
	rate := m.Mu*m.F - m.Lambda
	w1 := 0.0
	if len(m.States) == 1 {
		w1 = m.States[0].Wake
	}
	if w1 == 0 {
		return math.Exp(-rate * d), nil
	}
	denom := 1 - w1*rate
	if math.Abs(denom) < 1e-12 {
		// Degenerate equal-rate case: Erlang(2) tail.
		return (1 + rate*d) * math.Exp(-rate*d), nil
	}
	return (math.Exp(-rate*d) - w1*rate*math.Exp(-d/w1)) / denom, nil
}

// ResponseQuantile returns the p-quantile (0 < p < 1) of the response time
// by bisecting TailResponse; e.g. p = 0.95 gives the 95th percentile.
func (m Model) ResponseQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("%w: quantile p=%g outside (0,1)", ErrBadModel, p)
	}
	if _, err := m.TailResponse(1); err != nil {
		return 0, err
	}
	target := 1 - p
	lo, hi := 0.0, 1/(m.Mu*m.F-m.Lambda)
	for {
		tail, _ := m.TailResponse(hi)
		if tail < target || hi > 1e18 {
			break
		}
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		tail, _ := m.TailResponse(mid)
		if tail > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ResidencyFractions returns the long-run fraction of time the system
// spends serving-or-waking ("active"), idling before the first sleep state
// ("pre-sleep"), and resident in each low-power state (indexed as the
// States slice), derived from the same renewal-cycle analysis as E[P].
// The fractions sum to 1.
func (m Model) ResidencyFractions() (active, preSleep float64, states []float64, err error) {
	L, err := m.CycleLength()
	if err != nil {
		return 0, 0, nil, err
	}
	lamL := m.Lambda * L
	states = make([]float64, len(m.States))
	if len(m.States) == 0 {
		// Idle time is the whole non-busy fraction; with no sleep states
		// the server idles "actively".
		rhoEff := m.Lambda / (m.Mu * m.F)
		return rhoEff, 1 - rhoEff, states, nil
	}
	var sleepTotal float64
	for i := range m.States {
		states[i] = m.stateWeight(i) / lamL
		sleepTotal += states[i]
	}
	tau1 := m.States[0].Enter
	preSleep = (1 - math.Exp(-m.Lambda*tau1)) / lamL
	active = 1 - sleepTotal - preSleep
	return active, preSleep, states, nil
}

// MG1Model extends Model with a general service-time distribution given by
// its squared coefficient of variation; the Appendix notes E[R] and E[P]
// extend to general service times.
type MG1Model struct {
	Model
	// ServiceSCV is Cs², the squared coefficient of variation of service
	// times (1 for exponential).
	ServiceSCV float64
}

// MeanResponse returns E[R] for the M/G/1 queue with wake-up delays:
// Pollaczek–Khinchine waiting plus service plus Welch's setup term.
func (m MG1Model) MeanResponse() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if m.ServiceSCV < 0 {
		return 0, fmt.Errorf("%w: service SCV %g", ErrBadModel, m.ServiceSCV)
	}
	es := 1 / (m.Mu * m.F)
	es2 := (1 + m.ServiceSCV) * es * es
	rho := m.Lambda * es
	pk := m.Lambda * es2 / (2 * (1 - rho))
	d1 := m.wakeMoment(1)
	d2 := m.wakeMoment(2)
	setup := (2*d1 + m.Lambda*d2) / (2 * (1 + m.Lambda*d1))
	return es + pk + setup, nil
}

// MeanPower returns E[P] for the M/G/1 queue with wake-up delays. The
// Appendix power formula depends on the service distribution only through
// its mean (busy fraction), so it carries over unchanged.
func (m MG1Model) MeanPower() (float64, error) { return m.Model.MeanPower() }
