package stream_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sleepscale/internal/dist"
	"sleepscale/internal/queue"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

func fittedDNS(t testing.TB) workload.Stats {
	t.Helper()
	st, err := workload.NewFittedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := trace.EmailStore(1, 7).DailyWindow(120, 300)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func expSize(t testing.TB, mean float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewExponentialMean(mean)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustCollect(t testing.TB, src stream.Source, chunk int) []queue.Job {
	t.Helper()
	jobs, err := stream.Collect(src, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func requireJobsEqual(t *testing.T, got, want []queue.Job, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d jobs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: job %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func requireSorted(t *testing.T, jobs []queue.Job, label string) {
	t.Helper()
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatalf("%s: job %d arrival %g before %g", label, i, jobs[i].Arrival, jobs[i-1].Arrival)
		}
	}
}

// checkSourceContract pins the properties every source must satisfy:
// chunk-boundary invariance (1, 7 and default-sized pulls deliver the same
// stream), Reset determinism (same seed replays bit-identically) and
// arrival ordering. It returns the reference stream.
func checkSourceContract(t *testing.T, src stream.Source, seed int64, label string) []queue.Job {
	t.Helper()
	src.Reset(seed)
	ref := mustCollect(t, src, 0)
	requireSorted(t, ref, label)
	for _, chunk := range []int{1, 7} {
		src.Reset(seed)
		requireJobsEqual(t, mustCollect(t, src, chunk), ref, label+" chunked")
	}
	src.Reset(seed)
	requireJobsEqual(t, mustCollect(t, src, 0), ref, label+" reset replay")
	src.Reset(seed + 1)
	other := mustCollect(t, src, 0)
	if _, isSlice := src.(*stream.SliceSource); !isSlice {
		same := len(other) == len(ref)
		if same {
			for i := range other {
				if other[i] != ref[i] {
					same = false
					break
				}
			}
		}
		if same && len(ref) > 0 {
			t.Errorf("%s: different seeds produced identical streams", label)
		}
	}
	src.Reset(seed)
	return ref
}

func TestSliceSourceContract(t *testing.T) {
	st := fittedDNS(t)
	jobs := st.Jobs(500, rand.New(rand.NewSource(1)))
	checkSourceContract(t, stream.Slice(jobs), 0, "slice")
	got := mustCollect(t, stream.Slice(jobs), 3)
	requireJobsEqual(t, got, jobs, "slice contents")
}

func TestTraceSourceMatchesTraceJobs(t *testing.T) {
	st := fittedDNS(t)
	tr := testTrace(t)
	const seed = 42
	want := st.TraceJobs(tr.Utilization, tr.SlotSeconds, rand.New(rand.NewSource(seed)))
	if len(want) == 0 {
		t.Fatal("empty reference stream")
	}
	src, err := stream.Trace(st, tr, seed)
	if err != nil {
		t.Fatal(err)
	}
	got := checkSourceContract(t, src, seed, "trace")
	requireJobsEqual(t, got, want, "trace vs TraceJobs")
}

func TestCSVTraceSourceMatchesTraceSource(t *testing.T) {
	st := fittedDNS(t)
	tr := testTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	const seed = 9
	direct, err := stream.Trace(st, tr, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := mustCollect(t, direct, 0)
	src, err := stream.CSVTrace(bytes.NewReader(buf.Bytes()), st, tr.SlotSeconds, seed)
	if err != nil {
		t.Fatal(err)
	}
	got := checkSourceContract(t, src, seed, "csv")
	requireJobsEqual(t, got, want, "csv vs trace")
}

func TestCSVTraceSourceSurfacesParseError(t *testing.T) {
	st := fittedDNS(t)
	src, err := stream.CSVTrace(strings.NewReader("0,0.5\n1,bogus\n"), st, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Collect(src, 0); err == nil {
		t.Fatal("malformed CSV row did not surface")
	}
	if stream.Err(src) == nil {
		t.Fatal("Err() nil after parse failure")
	}
}

func TestStationarySource(t *testing.T) {
	st := fittedDNS(t)
	const horizon = 2000.0
	src, err := stream.NewStationary(st, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := checkSourceContract(t, src, 3, "stationary")
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	if last := jobs[len(jobs)-1].Arrival; last >= horizon {
		t.Fatalf("arrival %g beyond horizon", last)
	}
	// Mean arrival rate should approximate 1/interArrivalMean.
	got := float64(len(jobs)) / horizon
	want := 1 / st.Inter.Mean()
	if math.Abs(got-want)/want > 0.2 {
		t.Errorf("rate %g, want ≈ %g", got, want)
	}
}

func TestMMPPSource(t *testing.T) {
	size := expSize(t, 0.01)
	cfg := stream.MMPPConfig{
		OnRate: 50, OffRate: 0,
		MeanOn: 10, MeanOff: 10,
		Size: size, Horizon: 4000,
	}
	src, err := stream.NewMMPP(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	jobs := checkSourceContract(t, src, 11, "mmpp")
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	if last := jobs[len(jobs)-1].Arrival; last >= cfg.Horizon {
		t.Fatalf("arrival %g beyond horizon", last)
	}
	// Half the time on at rate 50 → overall rate ≈ 25.
	got := float64(len(jobs)) / cfg.Horizon
	if got < 15 || got > 35 {
		t.Errorf("overall rate %g, want ≈ 25", got)
	}
}

func TestMMPPValidation(t *testing.T) {
	size := expSize(t, 0.01)
	bad := []stream.MMPPConfig{
		{OnRate: 0, OffRate: 0, MeanOn: 1, MeanOff: 1, Size: size, Horizon: 1},
		{OnRate: -1, OffRate: 0, MeanOn: 1, MeanOff: 1, Size: size, Horizon: 1},
		{OnRate: 1, OffRate: 0, MeanOn: 0, MeanOff: 1, Size: size, Horizon: 1},
		{OnRate: 1, OffRate: 0, MeanOn: 1, MeanOff: 1, Size: nil, Horizon: 1},
		{OnRate: 1, OffRate: 0, MeanOn: 1, MeanOff: 1, Size: size, Horizon: 0},
	}
	for i, c := range bad {
		if _, err := stream.NewMMPP(c, 1); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestFlashCrowdSource(t *testing.T) {
	size := expSize(t, 0.01)
	cfg := stream.FlashCrowdConfig{
		BaseRate: 5, SpikeEvery: 200, Peak: 8, Decay: 30,
		Size: size, Horizon: 5000,
	}
	src, err := stream.NewFlashCrowd(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	jobs := checkSourceContract(t, src, 21, "flash")
	if last := jobs[len(jobs)-1].Arrival; last >= cfg.Horizon {
		t.Fatalf("arrival %g beyond horizon", last)
	}
	// With Peak = 0 the process degenerates to homogeneous Poisson at
	// BaseRate; the spike overlay must add load beyond it.
	quiet := cfg
	quiet.Peak = 0
	qsrc, err := stream.NewFlashCrowd(quiet, 21)
	if err != nil {
		t.Fatal(err)
	}
	qjobs := mustCollect(t, qsrc, 0)
	qrate := float64(len(qjobs)) / cfg.Horizon
	if math.Abs(qrate-cfg.BaseRate)/cfg.BaseRate > 0.15 {
		t.Errorf("peak-0 rate %g, want ≈ %g", qrate, cfg.BaseRate)
	}
	if len(jobs) <= len(qjobs) {
		t.Errorf("spikes added no load: %d jobs vs %d without", len(jobs), len(qjobs))
	}
}

func TestDiurnalSource(t *testing.T) {
	size := expSize(t, 0.01)
	cfg := stream.DiurnalConfig{
		BaseRate: 1, PeakRate: 30, Period: 1000, Phase: 0.25,
		Size: size, Horizon: 1000,
	}
	src, err := stream.NewDiurnal(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	jobs := checkSourceContract(t, src, 5, "diurnal")
	// Count arrivals in the peak-centred half vs the trough-centred half.
	peakHalf, troughHalf := 0, 0
	for _, j := range jobs {
		if j.Arrival >= 0 && j.Arrival < 500 {
			peakHalf++
		} else {
			troughHalf++
		}
	}
	if peakHalf <= 2*troughHalf {
		t.Errorf("modulation missing: %d peak-half vs %d trough-half arrivals", peakHalf, troughHalf)
	}
}

func TestMergeMatchesSortedUnion(t *testing.T) {
	st := fittedDNS(t)
	a := st.Jobs(400, rand.New(rand.NewSource(1)))
	b := st.Jobs(300, rand.New(rand.NewSource(2)))
	m := stream.Merge(stream.Slice(a), stream.Slice(b))
	got := mustCollect(t, m, 5)
	// Reference: two-pointer merge with ties toward the first operand.
	var want []queue.Job
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].Arrival <= b[j].Arrival) {
			want = append(want, a[i])
			i++
		} else {
			want = append(want, b[j])
			j++
		}
	}
	requireJobsEqual(t, got, want, "merge")
}

func TestMergeOfGeneratorsContract(t *testing.T) {
	size := expSize(t, 0.01)
	m1, err := stream.NewMMPP(stream.MMPPConfig{
		OnRate: 20, OffRate: 1, MeanOn: 5, MeanOff: 20, Size: size, Horizon: 1000,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := stream.NewDiurnal(stream.DiurnalConfig{
		BaseRate: 2, PeakRate: 10, Period: 500, Size: size, Horizon: 1000,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSourceContract(t, stream.Merge(m1, d1), 77, "merge-generators")
}

func TestScaleRate(t *testing.T) {
	st := fittedDNS(t)
	jobs := st.Jobs(200, rand.New(rand.NewSource(4)))
	src, err := stream.ScaleRate(stream.Slice(jobs), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := mustCollect(t, src, 9)
	if len(got) != len(jobs) {
		t.Fatalf("%d jobs, want %d", len(got), len(jobs))
	}
	for i := range got {
		if got[i].Arrival != jobs[i].Arrival/2 || got[i].Size != jobs[i].Size {
			t.Fatalf("job %d = %+v, want arrival %g size %g",
				i, got[i], jobs[i].Arrival/2, jobs[i].Size)
		}
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := stream.ScaleRate(stream.Slice(jobs), bad); err == nil {
			t.Errorf("factor %g accepted", bad)
		}
	}
}

func TestSplice(t *testing.T) {
	st := fittedDNS(t)
	a := st.Jobs(300, rand.New(rand.NewSource(5)))
	b := st.Jobs(100, rand.New(rand.NewSource(6)))
	cut := a[150].Arrival // splice mid-stream
	src, err := stream.Splice(stream.Slice(a), cut, stream.Slice(b))
	if err != nil {
		t.Fatal(err)
	}
	got := mustCollect(t, src, 7)
	var want []queue.Job
	for _, j := range a {
		if j.Arrival >= cut {
			break
		}
		want = append(want, j)
	}
	for _, j := range b {
		j.Arrival += cut
		want = append(want, j)
	}
	requireJobsEqual(t, got, want, "splice")
	requireSorted(t, got, "splice")

	// A runs dry before the cut: b still starts at the cut.
	short, err := stream.Splice(stream.Slice(a[:3]), a[len(a)-1].Arrival+100, stream.Slice(b))
	if err != nil {
		t.Fatal(err)
	}
	got = mustCollect(t, short, 0)
	if len(got) != 3+len(b) {
		t.Fatalf("%d jobs, want %d", len(got), 3+len(b))
	}
	requireSorted(t, got, "splice-short")

	if _, err := stream.Splice(stream.Slice(a), -1, stream.Slice(b)); err == nil {
		t.Error("negative splice time accepted")
	}
}

func TestSpliceOfGeneratorsContract(t *testing.T) {
	size := expSize(t, 0.01)
	d, err := stream.NewDiurnal(stream.DiurnalConfig{
		BaseRate: 2, PeakRate: 10, Period: 400, Size: size, Horizon: 800,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := stream.NewFlashCrowd(stream.FlashCrowdConfig{
		BaseRate: 5, SpikeEvery: 100, Peak: 5, Decay: 20, Size: size, Horizon: 400,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := stream.Splice(d, 500, f)
	if err != nil {
		t.Fatal(err)
	}
	checkSourceContract(t, sp, 13, "splice-generators")
}

func TestScaleRateOfGeneratorContract(t *testing.T) {
	size := expSize(t, 0.01)
	m, err := stream.NewMMPP(stream.MMPPConfig{
		OnRate: 20, OffRate: 2, MeanOn: 10, MeanOff: 10, Size: size, Horizon: 1000,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := stream.ScaleRate(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	checkSourceContract(t, sc, 31, "scale-generator")
}

// TestTraceSourceSteadyStateAllocs pins the zero-allocation contract of the
// streaming generator: after the first drain, Reset + full re-drain through
// a reused chunk buffer allocates nothing.
func TestTraceSourceSteadyStateAllocs(t *testing.T) {
	st, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t)
	src, err := stream.Trace(st, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]queue.Job, stream.DefaultChunk)
	drain := func() {
		src.Reset(1)
		for {
			_, ok := src.Next(buf)
			if !ok {
				return
			}
		}
	}
	drain() // warm up
	if allocs := testing.AllocsPerRun(3, drain); allocs != 0 {
		t.Errorf("steady-state drain allocates %g allocs/op, want 0", allocs)
	}
}

// stutterSource exercises the Cursor's corner cases: it returns an empty
// chunk while still live, then delivers its final jobs alongside ok=false.
type stutterSource struct {
	jobs  []queue.Job
	calls int
}

func (s *stutterSource) Next(buf []queue.Job) (int, bool) {
	s.calls++
	if s.calls == 1 {
		return 0, true // empty chunk, more to come: must be retried
	}
	n := copy(buf, s.jobs)
	s.jobs = s.jobs[n:]
	return n, false // final chunk delivered with ok=false: must be drained
}

func (s *stutterSource) Reset(int64) {}

func TestCursorCornerCases(t *testing.T) {
	jobs := []queue.Job{{Arrival: 1, Size: 0.1}, {Arrival: 2, Size: 0.2}}
	cur := stream.NewCursor(&stutterSource{jobs: jobs})
	for i, want := range jobs {
		// Peek is idempotent until Advance.
		j1, ok1 := cur.Peek()
		j2, ok2 := cur.Peek()
		if !ok1 || !ok2 || j1 != j2 {
			t.Fatalf("job %d: peek not idempotent: %v/%v %v/%v", i, j1, ok1, j2, ok2)
		}
		if j1 != want {
			t.Fatalf("job %d = %v, want %v", i, j1, want)
		}
		cur.Advance()
	}
	if _, ok := cur.Peek(); ok {
		t.Fatal("cursor did not report exhaustion")
	}
	if _, ok := cur.Peek(); ok {
		t.Fatal("exhaustion not sticky")
	}
}

// TestCursorReset: a Reset cursor over a rewound (or fresh) source must
// replay the stream exactly, dropping any buffered lookahead from the
// previous binding — long-lived drivers cursor over many streams this way
// without reallocating.
func TestCursorReset(t *testing.T) {
	a := []queue.Job{{Arrival: 1, Size: 0.1}, {Arrival: 2, Size: 0.2}, {Arrival: 3, Size: 0.3}}
	b := []queue.Job{{Arrival: 9, Size: 0.9}}
	cur := stream.NewCursor(stream.Slice(a))
	// Consume one job, leaving lookahead buffered.
	if j, ok := cur.Peek(); !ok || j != a[0] {
		t.Fatalf("first peek = %v %v", j, ok)
	}
	cur.Advance()
	// Rebind to a different source: the stale lookahead must vanish.
	cur.Reset(stream.Slice(b))
	j, ok := cur.Peek()
	if !ok || j != b[0] {
		t.Fatalf("after Reset peek = %v %v, want %v", j, ok, b[0])
	}
	cur.Advance()
	if _, ok := cur.Peek(); ok {
		t.Fatal("rebound cursor not exhausted")
	}
	// Reset clears sticky exhaustion too.
	cur.Reset(stream.Slice(a))
	var got []queue.Job
	for {
		j, ok := cur.Peek()
		if !ok {
			break
		}
		got = append(got, j)
		cur.Advance()
	}
	if len(got) != len(a) {
		t.Fatalf("replay yielded %d jobs, want %d", len(got), len(a))
	}
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("replay job %d = %v, want %v", i, got[i], a[i])
		}
	}
}

// TestCursorMatchesCollect: draining through the cursor must yield exactly
// what the chunked Collect reference sees.
func TestCursorMatchesCollect(t *testing.T) {
	mk := func() stream.Source {
		src, err := stream.NewStationary(fittedDNS(t), 50, 9)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	want, err := stream.Collect(mk(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cur := stream.NewCursor(mk())
	var got []queue.Job
	for {
		j, ok := cur.Peek()
		if !ok {
			break
		}
		got = append(got, j)
		cur.Advance()
	}
	if len(got) != len(want) {
		t.Fatalf("cursor drained %d jobs, Collect %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("job %d diverges: %v vs %v", i, got[i], want[i])
		}
	}
}
