package stream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sleepscale/internal/colstore"
	"sleepscale/internal/queue"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

func dnsStats(t *testing.T) workload.Stats {
	t.Helper()
	st, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func jobsEqualBits(t *testing.T, label string, got, want []queue.Job) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d jobs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Arrival) != math.Float64bits(want[i].Arrival) ||
			math.Float64bits(got[i].Size) != math.Float64bits(want[i].Size) {
			t.Fatalf("%s: job %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestColTraceMatchesCSVAndMaterialized pins the determinism contract: for
// equal seeds, the columnar trace replay is bit-identical to the CSV replay
// and to the materialized-trace source, across seeds and across Reset.
func TestColTraceMatchesCSVAndMaterialized(t *testing.T) {
	tr := trace.EmailStore(1, 3)
	var csvBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	colPath := filepath.Join(t.TempDir(), "t.col")
	if err := tr.WriteCol(colPath); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := dnsStats(t)

	for _, seed := range []int64{1, 7, 42} {
		mat, err := Trace(st, tr, seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Collect(mat, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatal("empty reference stream")
		}

		csv, err := CSVTrace(bytes.NewReader(csvBuf.Bytes()), st, tr.SlotSeconds, seed)
		if err != nil {
			t.Fatal(err)
		}
		gotCSV, err := Collect(csv, 0)
		if err != nil {
			t.Fatal(err)
		}
		jobsEqualBits(t, "csv", gotCSV, want)

		col, err := ColTrace(r, st, seed)
		if err != nil {
			t.Fatal(err)
		}
		gotCol, err := Collect(col, 0)
		if err != nil {
			t.Fatal(err)
		}
		jobsEqualBits(t, "col", gotCol, want)

		// Reset mid-stream and replay: still bit-identical.
		col.Reset(seed)
		var buf [100]queue.Job
		col.Next(buf[:])
		col.Reset(seed)
		again, err := Collect(col, 0)
		if err != nil {
			t.Fatal(err)
		}
		jobsEqualBits(t, "col-reset", again, want)
	}
}

// TestColTraceReaderAtMatchesMapped pins the mmap and ReaderAt open paths to
// the same replayed stream.
func TestColTraceReaderAtMatchesMapped(t *testing.T) {
	tr := trace.FileServer(1, 5)
	colPath := filepath.Join(t.TempDir(), "t.col")
	if err := tr.WriteCol(colPath); err != nil {
		t.Fatal(err)
	}
	st := dnsStats(t)

	mm, err := colstore.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	f, err := os.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stt, _ := f.Stat()
	ra, err := colstore.OpenReaderAt(f, stt.Size())
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	s1, err := ColTrace(mm, st, 9)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ColTrace(ra, st, 9)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := Collect(s1, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Collect(s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	jobsEqualBits(t, "readerat", j2, j1)
}

// TestColJobsRecordReplay pins recorded-job replay: RecordJobs then
// NewColJobs returns the exact float64 bits of the original stream, and
// Reset replays from the top.
func TestColJobsRecordReplay(t *testing.T) {
	st := dnsStats(t)
	src, err := NewStationary(st, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "jobs.col")
	w, err := colstore.Create(path, JobsSchema())
	if err != nil {
		t.Fatal(err)
	}
	src.Reset(11)
	n, err := RecordJobs(src, w.Writer)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("recorded %d jobs, want %d", n, len(want))
	}

	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	replay, err := NewColJobs(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(replay, 0)
	if err != nil {
		t.Fatal(err)
	}
	jobsEqualBits(t, "replay", got, want)

	replay.Reset(0)
	again, err := Collect(replay, 17) // odd chunk size crosses block edges
	if err != nil {
		t.Fatal(err)
	}
	jobsEqualBits(t, "replay-reset", again, want)
}

func TestColSourceKindChecks(t *testing.T) {
	st := dnsStats(t)
	tr := trace.FileServer(1, 5)
	colPath := filepath.Join(t.TempDir(), "t.col")
	if err := tr.WriteCol(colPath); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := NewColJobs(r); err == nil {
		t.Fatal("NewColJobs accepted a trace file")
	}
	jobsPath := filepath.Join(t.TempDir(), "j.col")
	w, err := colstore.Create(jobsPath, JobsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	jr, err := colstore.Open(jobsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if _, err := ColTrace(jr, st, 1); err == nil {
		t.Fatal("ColTrace accepted a jobs file")
	}
}

// TestColTraceRejectsBadUtilization pins the replay-side validation: a slot
// outside [0,1) errors exactly as the CSV row parser would.
func TestColTraceRejectsBadUtilization(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.col")
	w, err := colstore.Create(path, trace.ColSchema(60))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range []float64{0.5, 1.5, 0.2} {
		if err := w.Append([]float64{float64(i), u}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	src, err := ColTrace(r, dnsStats(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(src, 0); err == nil {
		t.Fatal("out-of-range utilization replayed without error")
	}
}
