package stream

import (
	"fmt"
	"math"

	"sleepscale/internal/colstore"
	"sleepscale/internal/queue"
	"sleepscale/internal/workload"
)

// ColTrace replays a KindTrace column file through the trace-driven
// generation core — the columnar counterpart of CSVTrace, and bit-identical
// to it (and to the materialized Trace source) for equal seeds, since all
// three feed the same generator. On a mapped file a replay touches no
// per-slot parsing and no per-chunk allocation: slots stream out of
// zero-copy column views.
func ColTrace(r *colstore.Reader, st workload.Stats, seed int64) (Source, error) {
	s := r.Schema()
	if s.Kind != colstore.KindTrace {
		return nil, fmt.Errorf("stream: column file kind %d is not a trace", s.Kind)
	}
	col := s.ColIndex("utilization")
	if col < 0 {
		return nil, fmt.Errorf("stream: column file has no utilization column (cols %v)", s.Cols)
	}
	if s.SlotSeconds <= 0 {
		return nil, fmt.Errorf("stream: column file has no slot length")
	}
	feed := &colFeed{r: r, col: col}
	return st.NewTraceGenFeed(feed, s.SlotSeconds, seed)
}

// colFeed adapts a column reader to workload.SlotFeed, streaming the
// utilization column block by block. Validation matches the CSV row parser:
// every slot must be in [0, 1).
type colFeed struct {
	r    *colstore.Reader
	col  int
	blk  int       // next block to load
	pos  int       // next index into vals
	row  int       // absolute row, for error messages
	vals []float64 // current block's values (view or scratch)
	scr  []float64 // decode scratch for non-mapped readers
}

func (f *colFeed) NextSlot() (float64, bool, error) {
	for f.pos == len(f.vals) {
		if f.blk == f.r.NumBlocks() {
			return 0, false, nil
		}
		v, err := f.r.Col(f.blk, f.col, f.scr)
		if err != nil {
			return 0, false, err
		}
		if !f.r.Mapped() {
			f.scr = v
		}
		f.vals = v
		f.blk++
		f.pos = 0
	}
	u := f.vals[f.pos]
	f.pos++
	i := f.row
	f.row++
	if u < 0 || u >= 1 || math.IsNaN(u) {
		return 0, false, fmt.Errorf("stream: slot %d utilization %g outside [0,1)", i, u)
	}
	return u, true, nil
}

func (f *colFeed) ResetSlots() error {
	f.blk, f.pos, f.row = 0, 0, 0
	f.vals = nil
	return nil
}

// ColJobs replays a KindJobs column file — a recorded job stream — as a
// Source. Replay is exact: the recorded float64 bits come back verbatim, so
// a recorded run replays bit-identically on any machine. Reset rewinds; the
// seed is ignored, the stream being already drawn (as with SliceSource).
type ColJobs struct {
	r        *colstore.Reader
	acol, sc int // arrival and size column indices
	blk, pos int
	arr, siz []float64
	arrScr   []float64
	sizScr   []float64
	err      error
}

// NewColJobs opens a job replay over r.
func NewColJobs(r *colstore.Reader) (*ColJobs, error) {
	s := r.Schema()
	if s.Kind != colstore.KindJobs {
		return nil, fmt.Errorf("stream: column file kind %d is not a job stream", s.Kind)
	}
	a, sz := s.ColIndex("arrival"), s.ColIndex("size")
	if a < 0 || sz < 0 {
		return nil, fmt.Errorf("stream: job column file needs arrival and size columns (cols %v)", s.Cols)
	}
	return &ColJobs{r: r, acol: a, sc: sz}, nil
}

// Next implements Source.
func (c *ColJobs) Next(buf []queue.Job) (n int, ok bool) {
	if c.err != nil {
		return 0, false
	}
	for n < len(buf) {
		if c.pos == len(c.arr) {
			if c.blk == c.r.NumBlocks() {
				return n, false
			}
			arr, err := c.r.Col(c.blk, c.acol, c.arrScr)
			if err != nil {
				c.err = err
				return n, false
			}
			siz, err := c.r.Col(c.blk, c.sc, c.sizScr)
			if err != nil {
				c.err = err
				return n, false
			}
			if !c.r.Mapped() {
				c.arrScr, c.sizScr = arr, siz
			}
			c.arr, c.siz = arr, siz
			c.blk++
			c.pos = 0
			continue
		}
		buf[n] = queue.Job{Arrival: c.arr[c.pos], Size: c.siz[c.pos]}
		n++
		c.pos++
	}
	return n, c.pos < len(c.arr) || c.blk < c.r.NumBlocks()
}

// Reset implements Source; the seed is ignored.
func (c *ColJobs) Reset(int64) {
	c.blk, c.pos = 0, 0
	c.arr, c.siz = nil, nil
	c.err = nil
}

// Err reports a column read failure that ended the stream early.
func (c *ColJobs) Err() error { return c.err }

// JobsSchema returns the column-file schema recorded job streams use.
func JobsSchema() colstore.Schema {
	return colstore.Schema{Kind: colstore.KindJobs, Cols: []string{"arrival", "size"}}
}

// RecordJobs drains src into w as a KindJobs column file, returning the
// number of jobs recorded. The writer is left open (callers may interleave
// other bookkeeping); close it to finish the file. Chunked draining keeps
// memory at one chunk regardless of stream length.
func RecordJobs(src Source, w *colstore.Writer) (int, error) {
	buf := make([]queue.Job, DefaultChunk)
	row := make([]float64, 2)
	total := 0
	for {
		n, ok := src.Next(buf)
		for _, j := range buf[:n] {
			row[0], row[1] = j.Arrival, j.Size
			if err := w.Append(row); err != nil {
				return total, err
			}
		}
		total += n
		if !ok {
			return total, Err(src)
		}
	}
}
