package stream

import (
	"io"
	"math/rand"

	"sleepscale/internal/queue"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// DefaultChunk is the chunk size Collect (and the package's drivers) use
// when the caller does not pick one.
const DefaultChunk = 256

// Source is a pull-based, bounded-memory job stream; see the package
// documentation for the full contract.
type Source interface {
	// Next writes up to len(buf) jobs into buf in non-decreasing arrival
	// order. ok=false means exhausted; the final n jobs remain valid.
	Next(buf []queue.Job) (n int, ok bool)
	// Reset rewinds the source to its beginning, reseeded with seed.
	Reset(seed int64)
}

// Cursor adapts a queue.JobSource to one-job-at-a-time consumption with
// lookahead, hiding the chunk-refill state machine every streaming driver
// otherwise hand-rolls (including its subtle corners: empty chunks from a
// still-live source are retried, and a final chunk delivered alongside
// ok=false is still drained). Peek exposes the next job without consuming
// it; Advance consumes it. The cursor owns its one-chunk buffer — the
// driver's job-memory high-water mark.
type Cursor struct {
	src       queue.JobSource
	buf       []queue.Job
	pos, n    int
	exhausted bool
}

// NewCursor returns a cursor over src, consumed from its current position.
func NewCursor(src queue.JobSource) *Cursor {
	return &Cursor{src: src, buf: make([]queue.Job, DefaultChunk)}
}

// Peek returns the next job without consuming it; ok=false means the
// source is exhausted.
func (c *Cursor) Peek() (j queue.Job, ok bool) {
	for c.pos == c.n {
		if c.exhausted {
			return queue.Job{}, false
		}
		n, more := c.src.Next(c.buf)
		c.pos, c.n = 0, n
		if !more {
			c.exhausted = true
		}
	}
	return c.buf[c.pos], true
}

// Advance consumes the job the last Peek exposed. It must follow a
// successful Peek.
func (c *Cursor) Advance() { c.pos++ }

// Reset rebinds the cursor to src (consumed from its current position),
// discarding any buffered lookahead but keeping the chunk buffer — so a
// long-lived driver can cursor over many streams without allocating.
func (c *Cursor) Reset(src queue.JobSource) {
	c.src = src
	c.pos, c.n = 0, 0
	c.exhausted = false
}

// Err reports the deferred error of a source that ended early, for sources
// that expose one (Err() error); nil otherwise.
func Err(src Source) error {
	if es, ok := src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

// SliceSource adapts a materialized job slice (sorted by arrival) to the
// Source contract — the bridge by which pre-generated streams ride the
// streaming drivers. Reset rewinds to the first job; the seed is ignored,
// the slice being already drawn.
type SliceSource struct {
	jobs []queue.Job
	pos  int
}

// Slice returns a SliceSource over jobs.
func Slice(jobs []queue.Job) *SliceSource { return &SliceSource{jobs: jobs} }

// Next implements Source.
func (s *SliceSource) Next(buf []queue.Job) (int, bool) {
	n := copy(buf, s.jobs[s.pos:])
	s.pos += n
	return n, s.pos < len(s.jobs)
}

// Reset implements Source; the seed is ignored.
func (s *SliceSource) Reset(int64) { s.pos = 0 }

// Collect drains src into a fresh slice using chunk-sized reads (chunk < 1
// picks DefaultChunk) and surfaces the source's deferred error. It is the
// materializing adapter — and the reference driver the equivalence tests
// pin chunked delivery against.
func Collect(src Source, chunk int) ([]queue.Job, error) {
	if chunk < 1 {
		chunk = DefaultChunk
	}
	buf := make([]queue.Job, chunk)
	var jobs []queue.Job
	for {
		n, ok := src.Next(buf)
		jobs = append(jobs, buf[:n]...)
		if !ok {
			return jobs, Err(src)
		}
	}
}

// Trace returns the streaming form of st.TraceJobs over tr: bit-identical
// to the materialized stream for equal seeds, in O(1) generator state.
func Trace(st workload.Stats, tr *trace.Trace, seed int64) (Source, error) {
	return st.NewTraceGen(tr.Utilization, tr.SlotSeconds, seed)
}

// CSVTrace replays a WriteCSV-format utilization trace row at a time
// through the trace-driven generation core, never materializing the trace:
// the memory high-water mark is one CSV row plus the generator cursor.
// Reset seeks r back to the start.
func CSVTrace(r io.ReadSeeker, st workload.Stats, slotSeconds float64, seed int64) (Source, error) {
	feed := &csvFeed{r: r}
	if err := feed.ResetSlots(); err != nil {
		return nil, err
	}
	return st.NewTraceGenFeed(feed, slotSeconds, seed)
}

// csvFeed adapts a seekable CSV stream to workload.SlotFeed.
type csvFeed struct {
	r  io.ReadSeeker
	sr *trace.SlotReader
}

func (f *csvFeed) NextSlot() (float64, bool, error) { return f.sr.Next() }

func (f *csvFeed) ResetSlots() error {
	if _, err := f.r.Seek(0, io.SeekStart); err != nil {
		return err
	}
	f.sr = trace.NewSlotReader(f.r)
	return nil
}

// Stationary is a fixed-rate source: cumulative inter-arrival samples and
// service-demand samples from the workload statistics, up to a time horizon
// — the streaming analogue of workload.Stats.Jobs.
type Stationary struct {
	stats   workload.Stats
	horizon float64
	rng     *rand.Rand
	tnow    float64
	done    bool
}

// NewStationary returns a stationary source over st generating arrivals in
// [0, horizon).
func NewStationary(st workload.Stats, horizon float64, seed int64) (*Stationary, error) {
	if err := validateHorizon(horizon); err != nil {
		return nil, err
	}
	return &Stationary{stats: st, horizon: horizon, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next implements Source.
func (s *Stationary) Next(buf []queue.Job) (n int, ok bool) {
	for n < len(buf) {
		if s.done {
			return n, false
		}
		s.tnow += s.stats.Inter.Sample(s.rng)
		if s.tnow >= s.horizon {
			s.done = true
			return n, false
		}
		buf[n] = queue.Job{Arrival: s.tnow, Size: s.stats.Size.Sample(s.rng)}
		n++
	}
	return n, true
}

// Reset implements Source.
func (s *Stationary) Reset(seed int64) {
	s.rng.Seed(seed)
	s.tnow, s.done = 0, false
}
