package stream

import (
	"fmt"
	"math"

	"sleepscale/internal/queue"
)

// mergeSeedStride derives per-child seeds on a combinator Reset (a
// golden-ratio odd constant; wraparound is fine, distinctness is the point).
const mergeSeedStride int64 = 0x2545F4914F6CDD1D

// Merge interleaves sources into one arrival-ordered stream, buffering one
// chunk per operand (O(k·chunk) memory). Ties break toward the earlier
// operand, so the interleave is deterministic. Reset(seed) resets child i
// with seed + (i+1)·mergeSeedStride, making a composed scenario replayable
// from one seed.
func Merge(sources ...Source) Source {
	m := &mergeSource{
		srcs: sources,
		bufs: make([][]queue.Job, len(sources)),
		pos:  make([]int, len(sources)),
		n:    make([]int, len(sources)),
		done: make([]bool, len(sources)),
	}
	for i := range m.bufs {
		m.bufs[i] = make([]queue.Job, DefaultChunk)
	}
	return m
}

type mergeSource struct {
	srcs []Source
	bufs [][]queue.Job
	pos  []int
	n    []int
	done []bool
}

// fill reports whether source i has a buffered head, refilling as needed.
func (m *mergeSource) fill(i int) bool {
	for m.pos[i] == m.n[i] {
		if m.done[i] {
			return false
		}
		n, ok := m.srcs[i].Next(m.bufs[i])
		m.pos[i], m.n[i] = 0, n
		if !ok {
			m.done[i] = true
		}
	}
	return true
}

// Next implements Source.
func (m *mergeSource) Next(out []queue.Job) (int, bool) {
	k := 0
	for k < len(out) {
		best := -1
		var bestT float64
		for i := range m.srcs {
			if !m.fill(i) {
				continue
			}
			if h := m.bufs[i][m.pos[i]]; best < 0 || h.Arrival < bestT {
				best, bestT = i, h.Arrival
			}
		}
		if best < 0 {
			return k, false
		}
		out[k] = m.bufs[best][m.pos[best]]
		m.pos[best]++
		k++
	}
	return k, true
}

// Reset implements Source.
func (m *mergeSource) Reset(seed int64) {
	for i, s := range m.srcs {
		s.Reset(seed + int64(i+1)*mergeSeedStride)
		m.pos[i], m.n[i], m.done[i] = 0, 0, false
	}
}

// Err reports the first child error.
func (m *mergeSource) Err() error {
	for _, s := range m.srcs {
		if err := Err(s); err != nil {
			return err
		}
	}
	return nil
}

// ScaleRate compresses the stream's time axis by factor > 0: every arrival
// instant divides by it, multiplying the arrival rate; service demands are
// untouched. Factor 2 doubles the load, factor 0.5 halves it.
func ScaleRate(src Source, factor float64) (Source, error) {
	if !(factor > 0) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("stream: rate factor %g not a positive finite number", factor)
	}
	return &scaleSource{src: src, factor: factor}, nil
}

type scaleSource struct {
	src    Source
	factor float64
}

// Next implements Source.
func (s *scaleSource) Next(buf []queue.Job) (int, bool) {
	n, ok := s.src.Next(buf)
	for i := range buf[:n] {
		buf[i].Arrival /= s.factor
	}
	return n, ok
}

// Reset implements Source.
func (s *scaleSource) Reset(seed int64) { s.src.Reset(seed) }

// Err forwards the child error.
func (s *scaleSource) Err() error { return Err(s.src) }

// Splice plays a until time at (exclusive), then b with every arrival
// shifted by at — scenario stitching, e.g. a quiet morning followed by a
// flash crowd. Once the cut is reached a is never read again; if a runs dry
// early, b starts at the cut regardless.
func Splice(a Source, at float64, b Source) (Source, error) {
	if at < 0 || math.IsNaN(at) {
		return nil, fmt.Errorf("stream: splice time %g negative", at)
	}
	return &spliceSource{a: a, b: b, at: at}, nil
}

type spliceSource struct {
	a, b Source
	at   float64
	inB  bool
}

// Next implements Source.
func (s *spliceSource) Next(buf []queue.Job) (int, bool) {
	n := 0
	if !s.inB {
		m, ok := s.a.Next(buf)
		cut := m
		for i := 0; i < m; i++ {
			if buf[i].Arrival >= s.at {
				cut = i
				break
			}
		}
		n = cut
		if cut < m || !ok {
			s.inB = true // jobs past the cut are discarded
		}
		if !s.inB {
			return n, true
		}
	}
	m, ok := s.b.Next(buf[n:])
	for i := n; i < n+m; i++ {
		buf[i].Arrival += s.at
	}
	return n + m, ok
}

// Reset implements Source.
func (s *spliceSource) Reset(seed int64) {
	s.a.Reset(seed + mergeSeedStride)
	s.b.Reset(seed + 2*mergeSeedStride)
	s.inB = false
}

// Err reports the first operand error.
func (s *spliceSource) Err() error {
	if err := Err(s.a); err != nil {
		return err
	}
	return Err(s.b)
}
