package stream

import (
	"fmt"
	"math"
	"math/rand"

	"sleepscale/internal/dist"
	"sleepscale/internal/queue"
)

// validateHorizon checks a generation horizon shared by the synthetic
// scenario sources.
func validateHorizon(h float64) error {
	if !(h > 0) || math.IsInf(h, 0) {
		return fmt.Errorf("stream: horizon %g not a positive finite duration", h)
	}
	return nil
}

func validateSize(d dist.Distribution) error {
	if d == nil {
		return fmt.Errorf("stream: nil size distribution")
	}
	return nil
}

// MMPPConfig parameterizes a two-state (on/off) Markov-modulated Poisson
// process: arrivals are Poisson at OnRate during on-sojourns and at OffRate
// during off-sojourns, with exponentially distributed sojourn durations —
// the canonical bursty arrival model of scale-out workload studies.
type MMPPConfig struct {
	// OnRate and OffRate are the arrival rates (jobs/second) in the two
	// modulation states; OffRate may be 0 for strict on/off bursts.
	OnRate  float64
	OffRate float64
	// MeanOn and MeanOff are the mean sojourn durations in seconds.
	MeanOn  float64
	MeanOff float64
	// Size is the service-demand distribution (seconds of work at f = 1).
	Size dist.Distribution
	// Horizon bounds generation: arrivals lie in [0, Horizon).
	Horizon float64
}

func (c MMPPConfig) validate() error {
	if c.OnRate < 0 || c.OffRate < 0 || (c.OnRate == 0 && c.OffRate == 0) {
		return fmt.Errorf("stream: mmpp rates (%g, %g) need one positive, none negative", c.OnRate, c.OffRate)
	}
	if !(c.MeanOn > 0) || !(c.MeanOff > 0) {
		return fmt.Errorf("stream: mmpp sojourn means (%g, %g) must be positive", c.MeanOn, c.MeanOff)
	}
	if err := validateSize(c.Size); err != nil {
		return err
	}
	return validateHorizon(c.Horizon)
}

// MMPP is the on/off burst source; it starts an on-sojourn at time 0.
type MMPP struct {
	cfg MMPPConfig
	rng *rand.Rand

	t        float64
	on       bool
	phaseEnd float64
	done     bool
}

// NewMMPP returns an MMPP source, deterministic in seed.
func NewMMPP(cfg MMPPConfig, seed int64) (*MMPP, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &MMPP{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	m.start()
	return m, nil
}

func (m *MMPP) start() {
	m.t, m.on, m.done = 0, true, false
	m.phaseEnd = m.rng.ExpFloat64() * m.cfg.MeanOn
}

// switchPhase jumps to the current sojourn's end and flips the modulation
// state. Discarding the partial inter-arrival gap is exact: within a
// sojourn the process is homogeneous Poisson, hence memoryless.
func (m *MMPP) switchPhase() {
	if m.phaseEnd >= m.cfg.Horizon {
		m.done = true
		return
	}
	m.t = m.phaseEnd
	m.on = !m.on
	mean := m.cfg.MeanOff
	if m.on {
		mean = m.cfg.MeanOn
	}
	m.phaseEnd = m.t + m.rng.ExpFloat64()*mean
}

// Next implements Source.
func (m *MMPP) Next(buf []queue.Job) (n int, ok bool) {
	for n < len(buf) {
		if m.done {
			return n, false
		}
		rate := m.cfg.OffRate
		if m.on {
			rate = m.cfg.OnRate
		}
		if rate <= 0 {
			m.switchPhase()
			continue
		}
		cand := m.t + m.rng.ExpFloat64()/rate
		if cand >= m.phaseEnd {
			m.switchPhase()
			continue
		}
		if cand >= m.cfg.Horizon {
			m.done = true
			return n, false
		}
		m.t = cand
		buf[n] = queue.Job{Arrival: m.t, Size: m.cfg.Size.Sample(m.rng)}
		n++
	}
	return n, true
}

// Reset implements Source.
func (m *MMPP) Reset(seed int64) {
	m.rng.Seed(seed)
	m.start()
}

// FlashCrowdConfig parameterizes a spike-and-decay arrival process: a
// Poisson base rate whose intensity is multiplied by randomly arriving,
// exponentially decaying spikes (a shot-noise overlay) —
//
//	λ(t) = BaseRate · (1 + Σ_spikes Peak · e^{−(t−t_spike)/Decay}).
type FlashCrowdConfig struct {
	// BaseRate is the quiescent arrival rate, jobs/second.
	BaseRate float64
	// SpikeEvery is the mean seconds between flash onsets (Poisson).
	SpikeEvery float64
	// Peak is the rate multiple each onset adds: intensity jumps by
	// Peak·BaseRate and decays from there.
	Peak float64
	// Decay is the spike's e-folding time in seconds.
	Decay float64
	// Size is the service-demand distribution.
	Size dist.Distribution
	// Horizon bounds generation: arrivals lie in [0, Horizon).
	Horizon float64
}

func (c FlashCrowdConfig) validate() error {
	if !(c.BaseRate > 0) {
		return fmt.Errorf("stream: flash-crowd base rate %g must be positive", c.BaseRate)
	}
	if !(c.SpikeEvery > 0) || !(c.Decay > 0) || c.Peak < 0 {
		return fmt.Errorf("stream: flash-crowd spike parameters (every %g, peak %g, decay %g) invalid",
			c.SpikeEvery, c.Peak, c.Decay)
	}
	if err := validateSize(c.Size); err != nil {
		return err
	}
	return validateHorizon(c.Horizon)
}

// FlashCrowd generates the spike-and-decay process by Ogata thinning:
// between spike onsets the intensity only decays, so the intensity at the
// segment's left edge bounds it and candidate arrivals thin exactly.
type FlashCrowd struct {
	cfg FlashCrowdConfig
	rng *rand.Rand

	t         float64
	amp       float64 // spike amplitude at time ampT
	ampT      float64
	nextSpike float64
	done      bool
}

// NewFlashCrowd returns a flash-crowd source, deterministic in seed.
func NewFlashCrowd(cfg FlashCrowdConfig, seed int64) (*FlashCrowd, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &FlashCrowd{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	f.start()
	return f, nil
}

func (f *FlashCrowd) start() {
	f.t, f.amp, f.ampT, f.done = 0, 0, 0, false
	f.nextSpike = f.rng.ExpFloat64() * f.cfg.SpikeEvery
}

// rate evaluates λ(t) for t ≥ f.ampT.
func (f *FlashCrowd) rate(t float64) float64 {
	return f.cfg.BaseRate * (1 + f.amp*math.Exp(-(t-f.ampT)/f.cfg.Decay))
}

// Next implements Source.
func (f *FlashCrowd) Next(buf []queue.Job) (n int, ok bool) {
	for n < len(buf) {
		if f.done {
			return n, false
		}
		lam := f.rate(f.t) // upper bound over [t, nextSpike): decaying
		cand := f.t + f.rng.ExpFloat64()/lam
		if cand >= f.nextSpike && f.nextSpike < f.cfg.Horizon {
			// A spike fires first: fold the decay to the onset instant,
			// add the new shot, and restart the thinning segment there
			// (exact by memorylessness of the bounding process).
			f.amp = f.amp*math.Exp(-(f.nextSpike-f.ampT)/f.cfg.Decay) + f.cfg.Peak
			f.ampT = f.nextSpike
			f.t = f.nextSpike
			f.nextSpike = f.t + f.rng.ExpFloat64()*f.cfg.SpikeEvery
			continue
		}
		if cand >= f.cfg.Horizon {
			f.done = true
			return n, false
		}
		f.t = cand
		if f.rng.Float64()*lam <= f.rate(cand) {
			buf[n] = queue.Job{Arrival: f.t, Size: f.cfg.Size.Sample(f.rng)}
			n++
		}
	}
	return n, true
}

// Reset implements Source.
func (f *FlashCrowd) Reset(seed int64) {
	f.rng.Seed(seed)
	f.start()
}

// DiurnalConfig parameterizes a sinusoidally modulated Poisson process —
//
//	λ(t) = BaseRate + (PeakRate−BaseRate) · ½(1 + cos 2π(t/Period − Phase))
//
// peaking at t = Phase·Period each cycle, the day/night swing of the
// paper's Figure 7 traces as a continuous-time source.
type DiurnalConfig struct {
	// BaseRate and PeakRate are the trough and peak arrival rates,
	// jobs/second (0 ≤ BaseRate ≤ PeakRate, PeakRate > 0).
	BaseRate float64
	PeakRate float64
	// Period is the modulation period in seconds (86400 for a day).
	Period float64
	// Phase is the fraction of the period at which the peak occurs, in
	// [0, 1).
	Phase float64
	// Size is the service-demand distribution.
	Size dist.Distribution
	// Horizon bounds generation: arrivals lie in [0, Horizon).
	Horizon float64
}

func (c DiurnalConfig) validate() error {
	if c.BaseRate < 0 || !(c.PeakRate > 0) || c.BaseRate > c.PeakRate {
		return fmt.Errorf("stream: diurnal rates (base %g, peak %g) need 0 ≤ base ≤ peak, peak > 0",
			c.BaseRate, c.PeakRate)
	}
	if !(c.Period > 0) {
		return fmt.Errorf("stream: diurnal period %g must be positive", c.Period)
	}
	if c.Phase < 0 || c.Phase >= 1 {
		return fmt.Errorf("stream: diurnal phase %g outside [0,1)", c.Phase)
	}
	if err := validateSize(c.Size); err != nil {
		return err
	}
	return validateHorizon(c.Horizon)
}

// Diurnal generates the modulated process by thinning against the constant
// bound PeakRate.
type Diurnal struct {
	cfg  DiurnalConfig
	rng  *rand.Rand
	t    float64
	done bool
}

// NewDiurnal returns a diurnal source, deterministic in seed.
func NewDiurnal(cfg DiurnalConfig, seed int64) (*Diurnal, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Diurnal{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// rate evaluates λ(t).
func (d *Diurnal) rate(t float64) float64 {
	x := t/d.cfg.Period - d.cfg.Phase
	return d.cfg.BaseRate + (d.cfg.PeakRate-d.cfg.BaseRate)*0.5*(1+math.Cos(2*math.Pi*x))
}

// Next implements Source.
func (d *Diurnal) Next(buf []queue.Job) (n int, ok bool) {
	for n < len(buf) {
		if d.done {
			return n, false
		}
		d.t += d.rng.ExpFloat64() / d.cfg.PeakRate
		if d.t >= d.cfg.Horizon {
			d.done = true
			return n, false
		}
		if d.rng.Float64()*d.cfg.PeakRate <= d.rate(d.t) {
			buf[n] = queue.Job{Arrival: d.t, Size: d.cfg.Size.Sample(d.rng)}
			n++
		}
	}
	return n, true
}

// Reset implements Source.
func (d *Diurnal) Reset(seed int64) {
	d.rng.Seed(seed)
	d.t, d.done = 0, false
}
