// Package strategy implements the power-management strategies compared in
// §6.1 / Figure 9: SleepScale (SS), SleepScale restricted to a single
// low-power state (SS(C3)), DVFS-only, and race-to-halt (R2H). All satisfy
// core.Strategy and can be driven through the trace runner interchangeably.
package strategy

import (
	"fmt"

	"sleepscale/internal/core"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
)

// ManagerStrategy runs a core.Manager every epoch: it bootstraps an
// evaluation job stream from the logged events (rescaled to the predicted
// utilization), asks the manager for the minimum-power feasible policy, and
// applies the §5.2.3 frequency over-provisioning guard.
type ManagerStrategy struct {
	// Manager selects policies; its Space defines which states this
	// strategy may use.
	Manager *core.Manager
	// EvalJobs is N, the length of the bootstrap stream per selection
	// (the paper simulates 10,000 jobs; smaller values trade accuracy for
	// decision speed).
	EvalJobs int
	// OverProvision is α: when the previous epoch met its budget, the
	// selected frequency is raised to f·(1+α) as a guard band against
	// utilization surges. 0 disables over-provisioning.
	OverProvision float64
	// Label overrides the reported name.
	Label string
}

// NewSleepScale returns the full SleepScale strategy over the default
// five-state policy space.
func NewSleepScale(m *core.Manager, evalJobs int, alpha float64) (*ManagerStrategy, error) {
	return newManagerStrategy(m, evalJobs, alpha, "SS")
}

// NewFixedSleep returns SleepScale restricted to a single low-power state
// (e.g. SS(C3) in Figure 9). It replaces the manager's plan space.
func NewFixedSleep(m *core.Manager, state power.State, evalJobs int, alpha float64) (*ManagerStrategy, error) {
	m.Space.Plans = []policy.SleepPlan{policy.SingleState(state)}
	return newManagerStrategy(m, evalJobs, alpha, fmt.Sprintf("SS(%s)", state.CPU))
}

// NewDVFSOnly returns the DVFS-only baseline: frequency is optimized every
// epoch but the server is never allowed into a low-power state, idling in
// C0(a)S0(a) (§6.1: "using DVFS only wastes power as the server is not
// allowed to enter any low-power state when idling").
func NewDVFSOnly(m *core.Manager, evalJobs int, alpha float64) (*ManagerStrategy, error) {
	m.Space.Plans = []policy.SleepPlan{policy.NoSleep()}
	return newManagerStrategy(m, evalJobs, alpha, "DVFS")
}

func newManagerStrategy(m *core.Manager, evalJobs int, alpha float64, label string) (*ManagerStrategy, error) {
	if m == nil {
		return nil, fmt.Errorf("strategy: nil manager")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if evalJobs < 10 {
		return nil, fmt.Errorf("strategy: eval jobs %d too small", evalJobs)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("strategy: over-provision α %g < 0", alpha)
	}
	return &ManagerStrategy{Manager: m, EvalJobs: evalJobs, OverProvision: alpha, Label: label}, nil
}

// Name implements core.Strategy.
func (s *ManagerStrategy) Name() string { return s.Label }

// Decide implements core.Strategy.
func (s *ManagerStrategy) Decide(in core.DecideInput) (policy.Policy, error) {
	jobs, ok := in.Window.Jobs(s.EvalJobs, in.PredictedUtilization, in.Rng)
	if !ok {
		// Nothing logged yet (cold start): run safe — full speed, the
		// shallowest candidate state.
		return policy.Policy{Frequency: 1, Plan: s.Manager.Space.Plans[0]}, nil
	}
	best, _, err := s.Manager.Select(jobs, in.PredictedUtilization)
	if err != nil {
		return policy.Policy{}, err
	}
	pol := best.Policy
	if s.OverProvision > 0 && s.withinBudget(in) {
		f := pol.Frequency * (1 + s.OverProvision)
		if f > 1 {
			f = 1
		}
		pol.Frequency = f
	}
	return pol, nil
}

// withinBudget applies the §5.2.3 guard: over-provision when the previous
// epoch met its delay budget (an idle epoch counts as within budget). The
// paper notes this looks counter-intuitive but buffers against surges.
func (s *ManagerStrategy) withinBudget(in core.DecideInput) bool {
	if in.LastEpochJobs == 0 {
		return true
	}
	return s.Manager.QoS.EpochWithinBudget(in.LastEpochMeanDelay, in.LastEpochP95Delay)
}

// AnalyticSleepScale is the simulation-free variant the paper's §5.1.2
// observation 3 proposes as future work: each epoch it estimates λ and µ
// from the logged job events, then picks the policy with the idealized
// closed forms (grid search plus continuous frequency refinement) instead
// of replay simulation. Decisions cost microseconds instead of
// milliseconds; accuracy degrades when the workload departs from M/M.
type AnalyticSleepScale struct {
	// Manager supplies the space, profile and QoS.
	Manager *core.Manager
	// OverProvision is α, as in ManagerStrategy.
	OverProvision float64
}

// NewAnalyticSleepScale returns the closed-form strategy.
func NewAnalyticSleepScale(m *core.Manager, alpha float64) (*AnalyticSleepScale, error) {
	if m == nil {
		return nil, fmt.Errorf("strategy: nil manager")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if alpha < 0 {
		return nil, fmt.Errorf("strategy: over-provision α %g < 0", alpha)
	}
	return &AnalyticSleepScale{Manager: m, OverProvision: alpha}, nil
}

// Name implements core.Strategy.
func (s *AnalyticSleepScale) Name() string { return "SS(analytic)" }

// Decide implements core.Strategy.
func (s *AnalyticSleepScale) Decide(in core.DecideInput) (policy.Policy, error) {
	_, sizeMean, ok := in.Window.Means()
	if !ok || sizeMean <= 0 {
		return policy.Policy{Frequency: 1, Plan: s.Manager.Space.Plans[0]}, nil
	}
	mu := 1 / sizeMean
	lambda := in.PredictedUtilization * mu
	best, err := s.Manager.SelectIdealizedRefined(lambda, mu)
	if err != nil {
		return policy.Policy{}, err
	}
	pol := best.Policy
	within := in.LastEpochJobs == 0 ||
		s.Manager.QoS.EpochWithinBudget(in.LastEpochMeanDelay, in.LastEpochP95Delay)
	if s.OverProvision > 0 && within {
		f := pol.Frequency * (1 + s.OverProvision)
		if f > 1 {
			f = 1
		}
		pol.Frequency = f
	}
	return pol, nil
}

// RaceToHalt is the §6.1 R2H baseline: always run at maximum frequency and
// drop into one fixed low-power state the moment the queue empties [25].
type RaceToHalt struct {
	plan policy.SleepPlan
	name string
}

// NewRaceToHalt returns R2H with the given state (C3S0(i) and C6S0(i) in
// Figure 9).
func NewRaceToHalt(state power.State) (*RaceToHalt, error) {
	plan := policy.SingleState(state)
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &RaceToHalt{plan: plan, name: fmt.Sprintf("R2H(%s)", state.CPU)}, nil
}

// Name implements core.Strategy.
func (r *RaceToHalt) Name() string { return r.name }

// Decide implements core.Strategy: the policy never changes.
func (r *RaceToHalt) Decide(core.DecideInput) (policy.Policy, error) {
	return policy.Policy{Frequency: 1, Plan: r.plan}, nil
}

// Static applies one fixed policy forever; useful for ablations and as the
// simplest possible strategy.
type Static struct {
	// Policy is applied every epoch.
	Policy policy.Policy
	// Label is the reported name.
	Label string
}

// Name implements core.Strategy.
func (s *Static) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "static"
}

// Decide implements core.Strategy.
func (s *Static) Decide(core.DecideInput) (policy.Policy, error) { return s.Policy, nil }
