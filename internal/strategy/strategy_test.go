package strategy

import (
	"math/rand"
	"testing"

	"sleepscale/internal/core"
	"sleepscale/internal/eventlog"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/workload"
)

func testManager(t *testing.T) *core.Manager {
	t.Helper()
	mu := workload.DNS().MaxServiceRate()
	qos, err := policy.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Manager{
		Profile:      power.Xeon(),
		FreqExponent: 1,
		Space:        policy.Space{Plans: policy.DefaultPlans(), FreqStep: 0.05, MinFreq: 0.05},
		QoS:          qos,
	}
}

// loggedWindow builds a window holding a DNS-like job log.
func loggedWindow(t *testing.T, rho float64) *eventlog.Window {
	t.Helper()
	w, err := eventlog.NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewIdealizedStats(workload.DNS())
	if err != nil {
		t.Fatal(err)
	}
	st, err = st.AtUtilization(rho)
	if err != nil {
		t.Fatal(err)
	}
	jobs := st.Jobs(2000, rand.New(rand.NewSource(7)))
	w.Push(eventlog.FromJobs(jobs, 0))
	return w
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewSleepScale(nil, 100, 0); err == nil {
		t.Error("nil manager accepted")
	}
	if _, err := NewSleepScale(testManager(t), 5, 0); err == nil {
		t.Error("tiny eval jobs accepted")
	}
	if _, err := NewSleepScale(testManager(t), 100, -0.1); err == nil {
		t.Error("negative α accepted")
	}
	broken := testManager(t)
	broken.Profile = nil
	if _, err := NewSleepScale(broken, 100, 0); err == nil {
		t.Error("invalid manager accepted")
	}
}

func TestStrategyNames(t *testing.T) {
	ss, err := NewSleepScale(testManager(t), 100, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Name() != "SS" {
		t.Errorf("name = %q", ss.Name())
	}
	fs, err := NewFixedSleep(testManager(t), power.Sleep, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Name() != "SS(C3)" {
		t.Errorf("name = %q", fs.Name())
	}
	dv, err := NewDVFSOnly(testManager(t), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Name() != "DVFS" {
		t.Errorf("name = %q", dv.Name())
	}
	r3, err := NewRaceToHalt(power.Sleep)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Name() != "R2H(C3)" {
		t.Errorf("name = %q", r3.Name())
	}
	r6, err := NewRaceToHalt(power.DeepSleep)
	if err != nil {
		t.Fatal(err)
	}
	if r6.Name() != "R2H(C6)" {
		t.Errorf("name = %q", r6.Name())
	}
}

func TestFixedSleepRestrictsSpace(t *testing.T) {
	m := testManager(t)
	if _, err := NewFixedSleep(m, power.Sleep, 100, 0); err != nil {
		t.Fatal(err)
	}
	if len(m.Space.Plans) != 1 || m.Space.Plans[0].Name != "C3S0(i)" {
		t.Errorf("space not restricted: %+v", m.Space.Plans)
	}
}

func TestDVFSOnlyUsesNoSleep(t *testing.T) {
	m := testManager(t)
	if _, err := NewDVFSOnly(m, 100, 0); err != nil {
		t.Fatal(err)
	}
	if len(m.Space.Plans) != 1 || m.Space.Plans[0].Name != "none" {
		t.Errorf("space not restricted to NoSleep: %+v", m.Space.Plans)
	}
}

func TestRaceToHaltConstantDecision(t *testing.T) {
	r, err := NewRaceToHalt(power.DeepSleep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, err := r.Decide(core.DecideInput{PredictedUtilization: 0.1 * float64(i+1)})
		if err != nil {
			t.Fatal(err)
		}
		if p.Frequency != 1 || p.Plan.Name != "C6S0(i)" {
			t.Errorf("decision %d = %v, want f=1 C6S0(i)", i, p)
		}
	}
	if _, err := NewRaceToHalt(power.Active); err == nil {
		t.Error("active state accepted as halt target")
	}
}

func TestManagerStrategyColdStart(t *testing.T) {
	ss, err := NewSleepScale(testManager(t), 100, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := eventlog.NewWindow(3)
	p, err := ss.Decide(core.DecideInput{
		PredictedUtilization: 0.3,
		Window:               w,
		Rng:                  rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Frequency != 1 {
		t.Errorf("cold-start frequency = %v, want 1 (safe default)", p.Frequency)
	}
}

func TestManagerStrategyPicksSensiblePolicy(t *testing.T) {
	ss, err := NewSleepScale(testManager(t), 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ss.Decide(core.DecideInput{
		PredictedUtilization: 0.3,
		Window:               loggedWindow(t, 0.3),
		Rng:                  rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stability requires f > 0.3; a sane selection slows well below 1.
	if p.Frequency <= 0.3 || p.Frequency > 1 {
		t.Errorf("frequency %v outside sane range", p.Frequency)
	}
	if len(p.Plan.Phases) != 1 {
		t.Errorf("expected a single-state plan, got %v", p.Plan)
	}
}

func TestOverProvisioningBoostsFrequency(t *testing.T) {
	mBase := testManager(t)
	base, err := NewSleepScale(mBase, 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	mBoost := testManager(t)
	boost, err := NewSleepScale(mBoost, 2000, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	in := core.DecideInput{
		PredictedUtilization: 0.3,
		Window:               loggedWindow(t, 0.3),
		LastEpochJobs:        100,
		LastEpochMeanDelay:   0.01, // comfortably within budget
		Rng:                  rand.New(rand.NewSource(3)),
	}
	in2 := in
	in2.Rng = rand.New(rand.NewSource(3))
	p0, err := base.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := boost.Decide(in2)
	if err != nil {
		t.Fatal(err)
	}
	want := p0.Frequency * 1.35
	if want > 1 {
		want = 1
	}
	if diff := p1.Frequency - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("boosted frequency = %v, want %v (base %v × 1.35)",
			p1.Frequency, want, p0.Frequency)
	}
}

func TestOverProvisioningSkippedWhenOverBudget(t *testing.T) {
	mBase := testManager(t)
	base, err := NewSleepScale(mBase, 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	mBoost := testManager(t)
	boost, err := NewSleepScale(mBoost, 2000, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	in := core.DecideInput{
		PredictedUtilization: 0.3,
		Window:               loggedWindow(t, 0.3),
		LastEpochJobs:        100,
		LastEpochMeanDelay:   99, // way over budget: no guard band
		Rng:                  rand.New(rand.NewSource(4)),
	}
	in2 := in
	in2.Rng = rand.New(rand.NewSource(4))
	p0, err := base.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := boost.Decide(in2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Frequency != p0.Frequency {
		t.Errorf("over-budget epoch still boosted: %v vs %v", p1.Frequency, p0.Frequency)
	}
}

func TestAnalyticSleepScale(t *testing.T) {
	s, err := NewAnalyticSleepScale(testManager(t), 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SS(analytic)" {
		t.Errorf("name = %q", s.Name())
	}
	// Cold start: safe default.
	w, _ := eventlog.NewWindow(3)
	p, err := s.Decide(core.DecideInput{PredictedUtilization: 0.3, Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if p.Frequency != 1 {
		t.Errorf("cold-start frequency = %v", p.Frequency)
	}
	// With a logged window: a sensible continuous frequency.
	p, err = s.Decide(core.DecideInput{
		PredictedUtilization: 0.3,
		Window:               loggedWindow(t, 0.3),
		Rng:                  rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Frequency <= 0.3 || p.Frequency > 1 {
		t.Errorf("frequency %v out of range", p.Frequency)
	}
	if _, err := NewAnalyticSleepScale(nil, 0); err == nil {
		t.Error("nil manager accepted")
	}
	if _, err := NewAnalyticSleepScale(testManager(t), -1); err == nil {
		t.Error("negative α accepted")
	}
}

// TestAnalyticStrategyTracksSimulatedStrategy: on a near-M/M workload the
// closed-form strategy should land close to the simulation-based one —
// the premise of §5.1.2 observation 3.
func TestAnalyticStrategyTracksSimulatedStrategy(t *testing.T) {
	win := loggedWindow(t, 0.3)
	sim, err := NewSleepScale(testManager(t), 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := NewAnalyticSleepScale(testManager(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	in := core.DecideInput{
		PredictedUtilization: 0.3,
		Window:               win,
		Rng:                  rand.New(rand.NewSource(7)),
	}
	pSim, err := sim.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Rng = rand.New(rand.NewSource(7))
	pAna, err := ana.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if pSim.Plan.Name != pAna.Plan.Name {
		t.Errorf("plan disagreement: sim %v vs analytic %v", pSim, pAna)
	}
	if d := pSim.Frequency - pAna.Frequency; d > 0.1 || d < -0.1 {
		t.Errorf("frequency gap too large: sim %v vs analytic %v", pSim, pAna)
	}
}

func TestStaticStrategy(t *testing.T) {
	pol := policy.Policy{Frequency: 0.7, Plan: policy.SingleState(power.Halt)}
	s := &Static{Policy: pol, Label: "pinned"}
	if s.Name() != "pinned" {
		t.Errorf("name = %q", s.Name())
	}
	p, err := s.Decide(core.DecideInput{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Frequency != 0.7 || p.Plan.Name != "C1S0(i)" {
		t.Errorf("decision = %v", p)
	}
	if (&Static{}).Name() != "static" {
		t.Error("default label wrong")
	}
}
