// Package sleepscale is a from-scratch Go implementation of SleepScale
// (Liu, Draper, Kim — ISCA 2014): a runtime power-management system that
// jointly selects a DVFS frequency setting and a CPU/platform low-power
// (sleep) state for a server under a quality-of-service constraint.
//
// # What it provides
//
//   - A calibrated power model of CPU states C0(a)/C0(i)/C1/C3/C6 and
//     platform states S0(a)/S0(i)/S3 (paper Tables 1–4): Xeon and Atom.
//   - A discrete-event FCFS queueing simulator with DVFS-scaled service,
//     sleep-state sequences with enter delays, and wake-up penalties
//     (paper Algorithm 1), usable standalone via Simulate. The simulator
//     is built as a reusable kernel: Engine.Reset rewinds an engine
//     without giving up its buffers, and Evaluator scores many candidate
//     policies over one shared job stream with zero steady-state
//     allocations — the §5.1.1 selection loop (Manager.Select), the farm
//     and the multi-core simulators all run on it.
//   - Closed-form M/M/1-with-sleep-states analysis of mean power, mean
//     response time and response-time tails (paper Appendix), via Model.
//   - The SleepScale policy manager: enumerate (frequency, sleep plan)
//     candidates, characterize each against observed workload statistics,
//     pick the minimum-power policy meeting the QoS (paper §5.1).
//   - The epoch-driven runtime: utilization predictors (naive-previous,
//     LMS, LMS+CUSUM, offline genie), per-epoch job logging, frequency
//     over-provisioning, and a trace-driven evaluation loop (paper §5.2,
//     §6), plus the baselines it is compared against (DVFS-only,
//     race-to-halt, fixed-state SleepScale).
//   - Workload models for the paper's DNS / Mail / Google services
//     (Table 5) and synthetic utilization traces shaped like the paper's
//     file-server and email-store days (Figure 7).
//   - A distribution library (internal/dist) that moment-matches any
//     (mean, Cv) pair: Erlang mixtures for Cv < 1, exponential at Cv = 1,
//     balanced-means hyperexponentials for Cv > 1, lognormal heavy-tail
//     fits for the BigHouse surrogates, and empirical inverse-CDF replay —
//     see internal/dist's package documentation for the fitting rules.
//
// # Quick start
//
//	prof := sleepscale.Xeon()
//	spec := sleepscale.DNS()
//	qos, _ := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
//	mgr := sleepscale.NewManager(prof, spec, qos)
//	stats, _ := sleepscale.NewIdealizedStats(spec)
//	stats, _ = stats.AtUtilization(0.3)
//	jobs := stats.Jobs(10000, rand.New(rand.NewSource(1)))
//	best, _, _ := mgr.Select(jobs, 0.3)
//	fmt.Println(best.Policy) // e.g. "f=0.52 C0(i)S0(i)"
//
// # Simulation-kernel reuse contract
//
// The hot evaluation path never allocates in steady state. The pieces and
// their contracts:
//
//   - Engine.Reset(cfg, start) rewinds an engine exactly as a fresh
//     NewEngine would while keeping its response-sample and residency
//     buffers. Residency is tallied into a phase-indexed slice; the
//     name-keyed map only materializes in Finish.
//   - Evaluator owns one engine and a shared job stream; each Evaluate(cfg)
//     returns a SimSummary — plain scalars, safe to keep across further
//     calls. Results that alias evaluator storage (Responses) are only
//     valid until the next Evaluate.
//   - Every parallel driver — Manager.Select, RunFarm, RunFarmSources and
//     the sliced mode of RunFarmSource — executes on one process-wide
//     persistent worker pool (internal/par): workers start once, park
//     between submissions, pull work from an atomic ticket counter (or own
//     a fixed index shard with work stealing, keeping each engine on the
//     same cache-hot worker) and resynchronize through a reusable barrier,
//     so steady-state fan-out spawns no goroutines; concurrent submissions
//     share the worker set through a run queue instead of degrading to
//     inline-serial. Manager.Parallelism bounds the executors a selection
//     may use; results are identical for every bound.
//   - Manager.Select gives each pool executor one pooled Evaluator and
//     one sleep-phase scratch buffer, so scoring a candidate costs zero
//     allocations once the pool is warm. Manager.Evaluate remains the thin
//     one-shot wrapper, and SimulateSummary is its standalone analogue: a
//     pooled one-shot Simulate returning the scalar SimSummary with the
//     warm path's allocation profile.
//   - RunFarm simulates servers in parallel whenever the dispatcher routes
//     independently of server state (it implements Preassigner — round-robin
//     and random do, JSQ does not), merging per-server results in server
//     order so the outcome is bit-identical to sequential dispatch.
//   - SimulateMultiCore recycles whole k-core simulators through an internal
//     pool; MultiCoreSimulator.Reset supports the same reuse directly.
//   - RunFarm's preassigned parallel path draws its routing and bucketing
//     scratch (including the job-stream-sized backing array) from a shared
//     pool, so repeated scale-out sweeps settle into steady-state reuse;
//     engines stay per-call, so results never alias pooled storage.
//
// CI enforces the contract: cmd/benchsnap fails the build when the
// steady-state benchmarks (BenchmarkEvaluatorSteadyState,
// BenchmarkEngineThroughput) report any allocs/op, and writes the
// BENCH_selection.json perf-trajectory snapshot.
//
// # Streaming workloads
//
// Job streams need not be materialized. The streaming workload subsystem
// (internal/stream) provides pull-based sources that deliver
// arrival-ordered jobs in bounded chunks with zero steady-state
// allocations, so week-long traces run in O(chunk) job-buffer memory:
//
//   - Run streams its trace-driven jobs from the incremental generator
//     behind Stats.TraceJobs — one generation core, two drivers, so the
//     streamed and materialized streams are bit-identical for equal seeds.
//   - RunSource accepts any StreamSource: NewTraceSource,
//     NewCSVTraceSource (row-at-a-time CSV replay), NewStationarySource,
//     and the scenario generators NewMMPPSource (on/off bursts),
//     NewFlashCrowdSource (spike-and-decay overlays) and NewDiurnalSource
//     (sinusoidal modulation).
//   - MergeSources, ScaleRateSource and SpliceSources compose sources into
//     scenarios (a trace baseline plus a burst overlay, a mid-week flash
//     crowd); Reset(seed) replays any composition deterministically.
//   - SimulateSource and RunFarmSources are the streaming counterparts of
//     Simulate and RunFarm (one source per server).
//
// CI gates the streaming loop too: BenchmarkStreamSourceSteadyState must
// report 0 allocs/op, and BenchmarkStreamRunWeekTrace records a full 7-day
// streamed run in BENCH_stream.json.
//
// # Streaming farm dispatch
//
// RunFarmSource closes the gap between the two: one streamed source,
// k servers, a real dispatcher. Jobs are pulled in bounded chunks and
// routed at their arrival instants with the per-server engines advancing in
// virtual-time order, so state-dependent dispatchers see accurate queue
// depths without the stream ever being materialized. Besides RoundRobin,
// RandomDispatch and JSQ, the package ships PowerOfD (d random choices,
// join the least backlogged of the sample) and LeastWorkLeft (earliest
// completion, wake-up latency included — the wake-aware refinement of JSQ).
// Dispatchers advertise how they may be parallelized:
//
//   - Preassigner (round-robin, random): routing is state-independent, so
//     assignments preassign and servers simulate concurrently.
//   - VirtualRouter (JSQ, PowerOfD, LeastWorkLeft): routing depends only on
//     each server's work-completion time, which the driver tracks as a
//     scalar shadow advanced by SimConfig.NextFreeAt — an exact mirror of
//     the engine's availability arithmetic. LeastWorkLeft is additionally
//     an AnchoredRouter: its shadow carries each server's idle anchor, so
//     sleep-state wake pricing stays exact across mid-run config switches
//     taken during an idle period.
//
// At fleet scale the driver routes JSQ and LeastWorkLeft through an
// O(log k) index over the shadow (a tournament tree, plus per-phase idle
// bitsets and a wake-crossing heap for LeastWorkLeft), making a
// 10,000-server farm dispatchable at interactive speed; the index is
// bit-identical to the linear scan — an equivalence suite pins every
// decision up to k = 10,000 — and FarmDispatchOptions.LinearRouting turns
// it off for A/B timing.
//
// FarmDispatchOptions.Parallel enables the time-sliced parallel mode: the
// stream is cut into slices at dispatch-forced synchronization points, each
// slice routes serially and simulates concurrently on the persistent worker
// pool (FarmDispatchOptions.Workers bounds the executors), and the merge is
// bit-identical to the sequential dispatch — the determinism contract
// equivalence tests and a golden snapshot pin down across dispatchers,
// seeds and pool sizes. Steady-state callers hold a Farm and drive
// Reset + ServeSourceSliced + FinishSummary, whose farm-owned scratch makes
// the whole loop allocation-free once warm; RunFarmEpochs layers the §6
// epoch loop on top: one strategy decision per epoch applied fleet-wide,
// farm-wide delay statistics feeding the over-provisioning guard (with
// k = 1 it matches RunSource bit for bit).
//
// CI gates this path as well — BenchmarkFarmDispatchSteadyState (the
// Reset+ServeSource loop), BenchmarkFarmDispatchParallelJSQ (the pooled
// sliced loop, formerly 191 allocs/op when it spawned workers per slice)
// and BenchmarkFarmDispatch10k (the 10,000-server indexed dispatch, JSQ
// and LeastWorkLeft) must all hold 0 allocs/op in BENCH_farm.json,
// BenchmarkSelectParallel carries a hard allocs/op floor in
// BENCH_selection.json — and every bench snapshot doubles as a regression
// baseline: cmd/benchsnap -baseline fails the build when a benchmark
// regresses more than 25% ns/op (or allocates beyond its baseline) against
// the committed snapshot, with the benchmark child pinned to the
// baseline's recorded GOMAXPROCS so the timing gate stays armed on every
// runner shape.
//
// # Columnar trace & event store
//
// Heavy replay input and post-hoc analysis run on a compact columnar
// binary format (internal/colstore): per-column float64 blocks framed with
// per-block min/max/count footers and a CRC, memory-mapped on open so
// readers serve column views zero-copy out of the page cache (an
// io.ReaderAt fallback covers everything else). The format carries
// utilization traces (WriteColTrace/ReadColTrace — bit-exact, unlike
// CSV's decimal round-trip), recorded job streams (RecordJobsCol), and
// append-only epoch logs (WriteEpochLog, one row per decision epoch with
// per-epoch energy/busy/wake/idle deltas that sum exactly to the report's
// totals — Engine.TotalsAt splits idle periods at epoch boundaries without
// perturbing the run). Replay is wired into the streaming layer:
// NewColTraceSource feeds the shared trace generator (bit-identical to
// NewTraceSource and NewCSVTraceSource for equal seeds) and
// NewColJobsSource replays a recorded stream verbatim, so a production
// incident replays exactly on any machine. eventlog.Window tees per-epoch
// job logs into the same format, one block per epoch.
//
// cmd/colq aggregates column files without materializing them —
// sum/mean/min/max/count and ceiling nearest-rank percentiles, grouped and
// filtered by column — skipping every block whose footer range cannot
// match the filter. cmd/tracesim sniffs both trace formats and converts
// between them (-convert); cmd/farmsim -trace runs the epoch-policy farm
// over a trace and appends its epoch log (-epochs-out) for colq.
//
// CI gates the store: BenchmarkColReplaySteadyState and
// BenchmarkColJobsReplaySteadyState must hold 0 allocs/op, and
// BenchmarkColVsCSVReplay pins the columnar ingest's ~25× lead over
// buffered CSV in BENCH_colstore.json.
//
// # Live serving
//
// SleepScale also runs as what the paper pitches: a long-lived runtime
// controller. LiveRunner is the §6 epoch loop turned incremental — the same
// epoch machine behind Run and RunSource driven one event at a time
// (OfferJob/OfferSlot/Finish) by an unbounded telemetry stream, with no
// materialized trace and the batch runners' exact semantics: for the same
// events, epochs, predictions and policy switches are bit-identical to a
// batch run, and the steady-state loop does not allocate. At any epoch
// boundary, State captures a resumable snapshot — engine totals, predictor
// and policy-selection state, RNG cursors, queue backlog — and
// RestoreLiveRunner resumes from it bit-identically.
//
// The serve layer (internal/serve) wraps the runner into a daemon,
// cmd/sleepscaled: jobs and slot telemetry arrive over a compact binary
// wire protocol (Unix/TCP socket, or any stream.Source replayed through
// FeedWire — every scenario generator and recorded ColJobs stream doubles
// as a load generator), per-epoch stats and policy decisions stream out as
// NDJSON, and closed epochs tee to the colstore epoch log. Durability:
// checkpoints (CRC-framed, written atomically, previous snapshot rotated
// to a .prev fallback) every N epochs and on SIGTERM drain; the checkpoint
// records the epoch log's row count and plan dictionary, so a restore cuts
// the log back to that high-water mark and re-emitted epochs land exactly
// once. A checkpointed/killed/restored run produces the same epoch log as
// an uninterrupted one — equivalence tests pin this across seeds and
// checkpoint cadences, and corruption tests (truncation, CRC damage, torn
// writes, a decoder fuzz target) pin that damaged checkpoints fall back,
// never panic.
//
// CI gates the daemon's hot path in BENCH_serve.json:
// BenchmarkServeLoopSteadyState (decode one epoch of wire frames, advance
// the runner, emit NDJSON) must hold 0 allocs/op once warm, with
// BenchmarkServeCheckpointWrite tracking the fsync-bound checkpoint cost.
//
// # Fleet coordination
//
// Beyond one policy for k clones, the fleet coordinator (internal/fleet,
// NewFleetCoordinator) owns per-server policy state and runs the §6 epoch
// cycle fleet-wide with three coordination dimensions the homogeneous
// runner cannot express:
//
//   - Per-server policies (FleetConfig.PerServer): each server gets its own
//     utilization predictor and its own strategy decision per epoch, so a
//     skewed fleet runs each server at its own operating point.
//   - Staggered sleep quorums (FleetConfig.Quorum): a rotating duty window
//     of Q servers is capped to C1-or-shallower plans every epoch while
//     deep sleep rotates through the rest — bounded worst-case wake latency
//     without giving up deep-sleep residency, and the rotation spreads the
//     shallow duty evenly.
//   - Horizontal scaling (FleetConfig.Park): whole servers park — drained,
//     deepest-sleep, removed from routing — when predicted demand fits a
//     smaller active prefix at ParkTargetRho, and unpark against rising
//     demand, each wake-up paying the full deep-sleep latency via
//     Engine.WakeAt. The fleet report adds the fleet-level metrics this
//     enables: energy proportionality (measured energy vs the ideal
//     load-proportional line) and jobs per joule.
//
// Epochs serve through the farm's sliced driver between boundary switches
// (heterogeneous configurations route through ConfigRouter pricing; the
// active prefix serves as a Subfarm view), and with every dimension off
// the coordinator is bit-identical to RunFarmEpochs — an equivalence suite
// pins this across dispatchers, seeds and k up to 1,000. Fleet epoch and
// per-server rollup logs write to the columnar store
// (WriteFleetEpochLog/WriteFleetServerLog); cmd/farmsim -coordinate
// (-quorum, -park) drives the coordinator from the command line, and
// examples/fleet-demo compares baseline/quorum/parked runs over a
// synthetic email-store day, verifying the quorum invariant on every
// epoch.
//
// CI gates the coordinator in BENCH_fleet.json:
// BenchmarkFleetCoordinatedEpoch (k = 1,000, per-server policies, quorum
// rotation) must hold 0 allocs/op once warm. The bench gates run as a
// per-suite matrix with the fuzz targets smoked on every push.
//
// # Fault tolerance
//
// Everything above assumes k permanently healthy servers; the fault layer
// (internal/fault) drops that assumption. A fault.Source is a replayable,
// seed-deterministic crash/repair event stream — scripted schedules
// (NewFaultSchedule, ParseFaultSchedule: "<time> <server> crash|repair"
// per line) or seeded per-server MTBF/MTTR renewal processes
// (NewFaultRenewal) — with the same Reset(seed) contract as the workload
// sources: one seed, one outage timeline, replayable event for event.
//
// Wired through FleetConfig.Faults, the coordinator becomes fault-aware.
// A crash takes effect at its exact instant, mid-epoch or at a boundary:
// the server's engine refunds the energy it would have billed past the
// crash, jobs in flight on it are lost and re-dispatched under
// FleetConfig.Retry (budget + per-attempt backoff added to the re-arrival;
// exhausted budgets are dropped and accounted), and routing continues over
// the surviving servers through compact farm Select views — arbitrary
// subsets, not just prefixes, with the O(log k) index and both linear arms
// skipping down servers bit-identically. A repair rejoins the server cold:
// it pays its deepest wake transition before serving again, and the
// quorum/park arithmetic recomputes over the live healthy set (a crash
// that empties the active set emergency-unparks a healthy server at the
// crash instant). The report carries the conservation ledger — offered ==
// completed + requeued + dropped, with per-epoch energy deltas still
// summing exactly to the per-server totals — and the applied events
// (WriteFaultLog tees them to a colstore KindFaults log). An empty fault
// source is bit-identical to the coordinator without faults — the
// equivalence suite pins this across dispatchers, seeds and k up to 1,000.
//
// The daemon participates too: cmd/sleepscaled -faults gates ingest with a
// scripted outage for its single server (arrivals inside a crash..repair
// window are shed and accounted in the summary), its socket feed carries a
// read deadline and a bounded reconnect budget so a stalled or dropped
// wire client cannot wedge the serve loop, and cmd/farmsim grows -faults /
// -mtbf / -mttr / -retry-budget / -retry-backoff / -faults-out on top of
// -coordinate. examples/chaos-week runs a 10-server fleet through a week
// of seeded outages and checks the quorum invariant and the conservation
// ledger live.
//
// CI smokes the chaos suites under the race detector and gates failover
// routing in BENCH_fault.json: BenchmarkFaultFailoverRouting (k = 1,000,
// Select views over a churned healthy set) must hold 0 allocs/op.
//
// See examples/ for runnable programs (examples/week-long drives a 7-day
// trace through the streaming loop, then replays it from a mapped column
// file; examples/streamed-farm dispatches a 7-day diurnal + flash-crowd
// scenario across 16 servers and replays the recorded stream bit-for-bit;
// examples/live-replay crashes a serving daemon mid-week, tears its primary
// checkpoint, and proves the restored run's stitched epoch log bit-identical
// to an uninterrupted batch run) and internal/experiments for the harness
// that regenerates every table and figure in the paper.
package sleepscale
