package sleepscale_test

import (
	"fmt"

	"sleepscale"
)

// ExampleSimulate runs Algorithm 1 over a hand-crafted job schedule: one
// sleep phase at 30 W entered half a second after the queue empties, with a
// 0.1 s wake-up billed at the 250 W active power.
func ExampleSimulate() {
	cfg := sleepscale.SimConfig{
		Frequency:    1,
		FreqExponent: 1,
		ActivePower:  250,
		IdlePower:    250,
		Phases: []sleepscale.SleepPhase{
			{Name: "sleep", Power: 30, WakeLatency: 0.1, EnterAfter: 0.5},
		},
	}
	jobs := []sleepscale.Job{
		{Arrival: 1, Size: 2},
		{Arrival: 2, Size: 1},
		{Arrival: 10, Size: 1},
	}
	res, _ := sleepscale.Simulate(jobs, cfg, sleepscale.SimOptions{})
	fmt.Printf("jobs=%d mean response=%.3fs energy=%.0fJ avg power=%.1fW\n",
		res.Jobs, res.MeanResponse, res.Energy, res.AvgPower)
	// Output:
	// jobs=3 mean response=1.767s energy=1477J avg power=133.1W
}

// ExampleModel evaluates the paper's closed forms for a DNS-like server at
// ρ = 0.1 running at f = 0.42 with the deep C6S3 state — the Figure 1(a)
// optimum.
func ExampleModel() {
	prof := sleepscale.Xeon()
	pol := sleepscale.Policy{
		Frequency: 0.42,
		Plan:      sleepscale.SingleState(sleepscale.DeeperSleep),
	}
	mu := sleepscale.DNS().MaxServiceRate()
	m, _ := pol.AnalyticModel(prof, 0.1*mu, mu)
	p, _ := m.MeanPower()
	r, _ := m.MeanResponse()
	fmt.Printf("E[P]=%.1fW  normalized E[R]=%.2f\n", p, mu*r)
	// Output:
	// E[P]=78.6W  normalized E[R]=7.40
}

// ExamplePolicy_Config shows how a symbolic policy resolves against a power
// profile into the concrete numbers the simulator consumes.
func ExamplePolicy_Config() {
	pol := sleepscale.Policy{
		Frequency: 0.5,
		Plan:      sleepscale.SingleState(sleepscale.DeepSleep),
	}
	cfg, _ := pol.Config(sleepscale.Xeon(), 1)
	fmt.Printf("active=%.2fW sleep(%s)=%.1fW wake=%.0fµs\n",
		cfg.ActivePower, cfg.Phases[0].Name, cfg.Phases[0].Power,
		cfg.Phases[0].WakeLatency*1e6)
	// Output:
	// active=136.25W sleep(C6S0(i))=75.5W wake=1000µs
}

// ExampleSequence builds the §4.2 lesson-5 style multi-state walk.
func ExampleSequence() {
	plan := sleepscale.Sequence("",
		sleepscale.PlanPhase{State: sleepscale.OperatingIdle},
		sleepscale.PlanPhase{State: sleepscale.DeeperSleep, Enter: 2.5},
	)
	fmt.Println(plan.Name)
	// Output:
	// C0(i)S0(i)→C6S3
}

// ExampleNewMeanResponseQoS derives the §5.1.1 budget from a peak design
// utilization.
func ExampleNewMeanResponseQoS() {
	mu := sleepscale.DNS().MaxServiceRate() // 1/194ms
	qos, _ := sleepscale.NewMeanResponseQoS(0.8, mu)
	fmt.Printf("budget=%.3fs (normalized µE[R] ≤ %.0f)\n", qos.Budget, qos.Budget*mu)
	// Output:
	// budget=0.970s (normalized µE[R] ≤ 5)
}
