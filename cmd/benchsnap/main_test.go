package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `
goos: linux
BenchmarkEvaluatorSteadyState-8   	      10	   123456 ns/op	      42 watts	     100 B/op	       3 allocs/op
BenchmarkEngineThroughput-8       	       5	   999999 ns/op	       0 B/op	       0 allocs/op
PASS
`
	benches, err := parseBench(out, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkEvaluatorSteadyState" {
		t.Errorf("GOMAXPROCS suffix not trimmed: %q", b.Name)
	}
	if b.NsPerOp != 123456 || b.BytesPerOp != 100 || b.AllocsPerOp != 3 || b.Iterations != 10 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["watts"] != 42 {
		t.Errorf("custom metric lost: %+v", b.Metrics)
	}
}

// TestParseBenchSuffixByProcs: the -N name suffix is trimmed using the
// child's actual GOMAXPROCS, not the parent's — a snapshot taken under a
// pinned count must produce the same stable names on any machine — and at
// GOMAXPROCS=1 (no suffix emitted) nothing is trimmed, even from names
// that happen to end in a dash-number.
func TestParseBenchSuffixByProcs(t *testing.T) {
	out := "BenchmarkFarmRoute10k/indexed-4   	      10	   100 ns/op\n" +
		"BenchmarkOddName-4                	      10	   100 ns/op\n"
	benches, err := parseBench(out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if benches[0].Name != "BenchmarkFarmRoute10k/indexed" || benches[1].Name != "BenchmarkOddName" {
		t.Errorf("pinned-suffix trim wrong: %q, %q", benches[0].Name, benches[1].Name)
	}
	benches, err = parseBench(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if benches[1].Name != "BenchmarkOddName-4" {
		t.Errorf("GOMAXPROCS=1 run must not trim: %q", benches[1].Name)
	}
}

func bm(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareBaselinePasses(t *testing.T) {
	base := []Benchmark{bm("A", 100, 0), bm("B", 1000, 5)}
	fresh := []Benchmark{bm("A", 120, 0), bm("B", 900, 5), bm("C", 50, 1)}
	regressions, notes := compareBaseline(base, fresh, 0.25, true, nil)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "C") {
		t.Errorf("new benchmark C should be a note: %v", notes)
	}
}

func TestCompareBaselineNsRegression(t *testing.T) {
	base := []Benchmark{bm("A", 100, 0)}
	// 25% tolerance: 126 ns/op over a 100 ns/op baseline fails, 125 passes.
	if r, _ := compareBaseline(base, []Benchmark{bm("A", 125, 0)}, 0.25, true, nil); len(r) != 0 {
		t.Errorf("at-tolerance run flagged: %v", r)
	}
	r, _ := compareBaseline(base, []Benchmark{bm("A", 126, 0)}, 0.25, true, nil)
	if len(r) != 1 || !strings.Contains(r[0], "ns/op") {
		t.Errorf("over-tolerance run not flagged: %v", r)
	}
}

func TestCompareBaselineAllocRegression(t *testing.T) {
	// A zero-alloc baseline is an exact contract: a single alloc fails.
	base := []Benchmark{bm("A", 100, 0)}
	r, _ := compareBaseline(base, []Benchmark{bm("A", 100, 1)}, 0.25, true, nil)
	if len(r) != 1 || !strings.Contains(r[0], "allocs/op") {
		t.Errorf("alloc regression not flagged: %v", r)
	}
	// Improvements are fine.
	base = []Benchmark{bm("B", 100, 7)}
	if r, _ := compareBaseline(base, []Benchmark{bm("B", 100, 2)}, 0.25, true, nil); len(r) != 0 {
		t.Errorf("alloc improvement flagged: %v", r)
	}
	// Nonzero baselines absorb goroutine-recycling jitter (≤ max(2, 2%))
	// but not real growth.
	base = []Benchmark{bm("C", 100, 300)}
	if r, _ := compareBaseline(base, []Benchmark{bm("C", 100, 305)}, 0.25, true, nil); len(r) != 0 {
		t.Errorf("jitter within grace flagged: %v", r)
	}
	r, _ = compareBaseline(base, []Benchmark{bm("C", 100, 330)}, 0.25, true, nil)
	if len(r) != 1 || !strings.Contains(r[0], "allocs/op") {
		t.Errorf("real alloc growth not flagged: %v", r)
	}
}

func TestCompareBaselineMissingBenchmark(t *testing.T) {
	base := []Benchmark{bm("A", 100, 0), bm("Gone", 100, 0)}
	r, _ := compareBaseline(base, []Benchmark{bm("A", 100, 0)}, 0.25, true, nil)
	if len(r) != 1 || !strings.Contains(r[0], "Gone") {
		t.Errorf("missing benchmark not flagged: %v", r)
	}
}

func TestReadSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(path, []byte(`{
		"go_version": "go1.24",
		"benchmarks": [{"name": "A", "iterations": 3, "ns_per_op": 42}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks[0].NsPerOp != 42 {
		t.Errorf("snapshot = %+v", snap)
	}
	if _, err := readSnapshot(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(empty); err == nil {
		t.Error("empty snapshot accepted")
	}
}

// TestCompareBaselineCrossEnvironment: a baseline from a different machine
// class (different GOMAXPROCS) must not fail the build on environment-bound
// metrics — ns/op and goroutine-scaling allocs become notes — while the
// zero-alloc contracts and the missing-benchmark check stay enforced.
func TestCompareBaselineCrossEnvironment(t *testing.T) {
	base := []Benchmark{bm("Fast", 100, 0), bm("Par", 100, 181), bm("Gone", 1, 0)}
	fresh := []Benchmark{bm("Fast", 500, 0), bm("Par", 500, 400)}
	r, notes := compareBaseline(base, fresh, 0.25, false, nil)
	if len(r) != 1 || !strings.Contains(r[0], "Gone") {
		t.Errorf("cross-env: only the missing benchmark should fail, got %v", r)
	}
	if len(notes) != 3 { // two ns/op drifts plus Par's alloc drift
		t.Errorf("cross-env: ns/op and alloc drifts should be notes, got %v", notes)
	}
	// A zero-alloc contract broken cross-env still fails.
	r, _ = compareBaseline([]Benchmark{bm("Zero", 100, 0)}, []Benchmark{bm("Zero", 100, 3)}, 0.25, false, nil)
	if len(r) != 1 || !strings.Contains(r[0], "allocs/op") {
		t.Errorf("cross-env zero-alloc regression not flagged: %v", r)
	}
}

// TestMergeMin: repeated -count runs collapse to the per-metric minimum in
// first-appearance order.
func TestMergeMin(t *testing.T) {
	merged := mergeMin([]Benchmark{
		bm("A", 300, 5), bm("B", 50, 0), bm("A", 100, 7), bm("A", 200, 3),
	})
	if len(merged) != 2 {
		t.Fatalf("merged to %d entries, want 2", len(merged))
	}
	if merged[0].Name != "A" || merged[1].Name != "B" {
		t.Fatalf("order not preserved: %v, %v", merged[0].Name, merged[1].Name)
	}
	if merged[0].NsPerOp != 100 || merged[0].AllocsPerOp != 3 {
		t.Errorf("A minimum = %g ns/op, %g allocs/op; want 100, 3", merged[0].NsPerOp, merged[0].AllocsPerOp)
	}
}

// TestFloorFlagParsing: -floor specs parse as regex=allocs, splitting on the
// last '=' so regexes containing one still work, and reject malformed input.
func TestFloorFlagParsing(t *testing.T) {
	var f floorFlag
	for _, good := range []string{"SelectParallel$=19", "Farm.*JSQ$=0", "a=b$=3.5"} {
		if err := f.Set(good); err != nil {
			t.Errorf("Set(%q): %v", good, err)
		}
	}
	if len(f.specs) != 3 || f.specs[2].max != 3.5 || f.specs[2].expr != "a=b$" {
		t.Errorf("parsed specs = %+v", f.specs)
	}
	if f.String() == "" {
		t.Error("String() empty after Set")
	}
	for _, bad := range []string{"", "noequals", "=5", "re=", "re=x", "re=-1", "re=NaN", "re=+Inf", "(=2"} {
		var g floorFlag
		if err := g.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

// TestCheckFloors: each floor gates exactly the benchmarks its regex
// matches, and a floor matching nothing is itself a violation.
func TestCheckFloors(t *testing.T) {
	benches := []Benchmark{bm("SelectParallel", 100, 13), bm("FarmDispatchParallelJSQ", 100, 0)}
	specs := func(t *testing.T, exprs ...string) []floorSpec {
		t.Helper()
		var f floorFlag
		for _, e := range exprs {
			if err := f.Set(e); err != nil {
				t.Fatal(err)
			}
		}
		return f.specs
	}
	if v := checkFloors(benches, specs(t, "SelectParallel$=19", "ParallelJSQ$=19")); len(v) != 0 {
		t.Errorf("within-floor run flagged: %v", v)
	}
	v := checkFloors(benches, specs(t, "SelectParallel$=12"))
	if len(v) != 1 || !strings.Contains(v[0], "SelectParallel") {
		t.Errorf("over-floor run not flagged: %v", v)
	}
	v = checkFloors(benches, specs(t, "Renamed$=19"))
	if len(v) != 1 || !strings.Contains(v[0], "matched no benchmark") {
		t.Errorf("unmatched floor not flagged: %v", v)
	}
}

// TestCompareBaselineNsGate: -gate-bench restricts the timing gate to the
// benchmarks it matches — an ungated benchmark's ns/op drift becomes a note
// — while allocs/op comparisons and the missing-benchmark check still apply
// to everything.
func TestCompareBaselineNsGate(t *testing.T) {
	gate := regexp.MustCompile(`Col`)
	base := []Benchmark{bm("ColReplay", 100, 0), bm("CSVRef", 100, 5)}
	fresh := []Benchmark{bm("ColReplay", 100, 0), bm("CSVRef", 500, 5)}
	r, notes := compareBaseline(base, fresh, 0.25, true, gate)
	if len(r) != 0 {
		t.Errorf("ungated ns/op drift should not fail, got %v", r)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "CSVRef") && strings.Contains(n, "outside -gate-bench") {
			found = true
		}
	}
	if !found {
		t.Errorf("ungated drift should be a note, got %v", notes)
	}
	// A gated benchmark's drift still fails.
	r, _ = compareBaseline(base, []Benchmark{bm("ColReplay", 500, 0), bm("CSVRef", 100, 5)}, 0.25, true, gate)
	if len(r) != 1 || !strings.Contains(r[0], "ColReplay") {
		t.Errorf("gated ns/op drift not flagged: %v", r)
	}
	// Allocs ignore the gate entirely.
	r, _ = compareBaseline(base, []Benchmark{bm("ColReplay", 100, 0), bm("CSVRef", 100, 50)}, 0.25, true, gate)
	if len(r) != 1 || !strings.Contains(r[0], "allocs/op") {
		t.Errorf("ungated alloc growth not flagged: %v", r)
	}
}
