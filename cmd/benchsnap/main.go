// Command benchsnap runs a benchmark suite, writes a machine-readable
// snapshot so successive PRs have a perf trajectory, and enforces an
// allocs/op budget on the suite's steady-state path.
//
// CI runs it twice: once with the defaults for the policy-evaluation suite
// (BENCH_selection.json, gating the Evaluator/Engine zero-allocation
// contract) and once for the streaming workload subsystem —
//
//	go run ./cmd/benchsnap -bench 'StreamRunWeekTrace$|StreamSourceSteadyState$' \
//	    -budget-bench 'StreamSourceSteadyState$' -out BENCH_stream.json
//
// — gating the streaming generator's run loop at 0 allocs/op and recording
// the week-long-trace run's footprint.
//
// Usage:
//
//	go run ./cmd/benchsnap [-bench regex] [-benchtime 10x] \
//	    [-out BENCH_selection.json] [-budget 0] [-budget-bench regex]
//
// The tool exits non-zero when any benchmark matching -budget-bench exceeds
// -budget allocs/op, which is how CI catches allocation regressions on the
// hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the serialized benchmark report.
type Snapshot struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	BenchTime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench       = flag.String("bench", "PolicyEvaluation$|PolicySelection$|PolicySelectionSerial$|EvaluatorSteadyState$|EngineThroughput$|FarmScaleOut|MultiCoreSimulate$", "benchmark regex passed to go test")
		benchtime   = flag.String("benchtime", "5x", "benchtime passed to go test")
		out         = flag.String("out", "BENCH_selection.json", "snapshot output path")
		budget      = flag.Float64("budget", 0, "max allocs/op allowed on budgeted benchmarks")
		budgetBench = flag.String("budget-bench", "EvaluatorSteadyState|EngineThroughput", "regex of benchmarks the allocs/op budget applies to")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-benchtime", *benchtime, ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: go test: %v\n%s", err, raw)
		os.Exit(1)
	}
	benches, err := parseBench(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines matched")
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		BenchTime:  *benchtime,
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: wrote %s (%d benchmarks)\n", *out, len(benches))

	re, err := regexp.Compile(*budgetBench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: bad -budget-bench: %v\n", err)
		os.Exit(1)
	}
	failed := false
	for _, b := range benches {
		if !re.MatchString(b.Name) {
			continue
		}
		status := "ok"
		if b.AllocsPerOp > *budget {
			status = "OVER BUDGET"
			failed = true
		}
		fmt.Printf("benchsnap: %-40s %g allocs/op (budget %g) %s\n",
			b.Name, b.AllocsPerOp, *budget, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchsnap: evaluation path exceeds its allocs/op budget")
		os.Exit(1)
	}
}

// parseBench extracts benchmark result lines of the form
//
//	BenchmarkName-8   10   123456 ns/op   42 watts   100 B/op   3 allocs/op
//
// tolerating any number of custom unit pairs.
func parseBench(out string) ([]Benchmark, error) {
	var benches []Benchmark
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		benches = append(benches, b)
	}
	return benches, nil
}
