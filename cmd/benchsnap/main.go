// Command benchsnap runs a benchmark suite, writes a machine-readable
// snapshot so successive PRs have a perf trajectory, and enforces an
// allocs/op budget on the suite's steady-state path.
//
// CI runs it twice: once with the defaults for the policy-evaluation suite
// (BENCH_selection.json, gating the Evaluator/Engine zero-allocation
// contract) and once for the streaming workload subsystem —
//
//	go run ./cmd/benchsnap -bench 'StreamRunWeekTrace$|StreamSourceSteadyState$' \
//	    -budget-bench 'StreamSourceSteadyState$' -out BENCH_stream.json
//
// — gating the streaming generator's run loop at 0 allocs/op and recording
// the week-long-trace run's footprint.
//
// Usage:
//
//	go run ./cmd/benchsnap [-bench regex] [-benchtime 10x] [-count 3] \
//	    [-out BENCH_selection.json] [-budget 0] [-budget-bench regex] \
//	    [-floor 'regex=allocs' ...] \
//	    [-baseline BENCH_selection.json] [-max-ns-regress 0.25]
//
// -count repeats every benchmark and keeps the per-benchmark minimum — the
// noise-robust estimator — in both the snapshot and the gate comparison.
//
// The tool exits non-zero when any benchmark matching -budget-bench exceeds
// -budget allocs/op, which is how CI catches allocation regressions on the
// hot path. -floor (repeatable) attaches an individual allocs/op ceiling to
// benchmarks matching its regex — e.g. -floor 'SelectParallel$=19' — for
// paths whose API-mandated outputs keep them off the zero-alloc budget but
// whose floor must still never regress past a hard bound.
//
// With -baseline, the fresh run is additionally gated against a committed
// snapshot: any benchmark whose ns/op regresses by more than -max-ns-regress
// (fractional, default 0.25) or whose allocs/op exceeds the baseline at all
// fails the run, as does a baseline benchmark missing from the fresh run (a
// silently renamed or deleted benchmark must not pass the gate). Benchmarks
// new to the fresh run are noted but never fail — they have no baseline yet.
// The baseline is read before -out is written, so the two flags may name the
// same file: CI compares against the committed snapshot, then refreshes it
// as the uploaded artifact.
//
// Wall-clock timings and the parallel benchmarks' goroutine-scaling allocs
// depend on GOMAXPROCS, so a snapshot records the processor count it was
// measured under. To keep baselines comparable across runner shapes, the
// benchmark child process is pinned: -gomaxprocs sets its GOMAXPROCS
// explicitly, and the default (0, auto) pins it to the baseline's recorded
// count when -baseline is given — the fresh run then matches the baseline's
// machine class by construction and the full ns/op gate stays armed on any
// runner. Only when there is no baseline (or it predates the gomaxprocs
// field) does the child inherit the current processor count; a baseline
// from a genuinely unpinnable environment is still compared, with the
// environment-bound checks downgraded to notes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the serialized benchmark report. GoMaxProcs records the
// processor count the numbers were measured under: both wall-clock timings
// and the goroutine-spawn allocations of the parallel benchmarks scale with
// it, so the baseline gate treats a snapshot from a different processor
// count as a different machine class and downgrades those comparisons to
// notes (the zero-allocation contracts stay enforced — they are
// single-threaded and environment-independent).
type Snapshot struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	BenchTime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var floors floorFlag
	flag.Var(&floors, "floor", "repeatable allocs/op ceiling for specific benchmarks, as regex=allocs (e.g. 'SelectParallel$=19')")
	var (
		bench        = flag.String("bench", "PolicyEvaluation$|PolicySelection$|PolicySelectionSerial$|SelectParallel$|EvaluatorSteadyState$|EngineThroughput$|FarmScaleOut|MultiCoreSimulate$", "benchmark regex passed to go test")
		benchtime    = flag.String("benchtime", "5x", "benchtime passed to go test")
		out          = flag.String("out", "BENCH_selection.json", "snapshot output path")
		budget       = flag.Float64("budget", 0, "max allocs/op allowed on budgeted benchmarks")
		budgetBench  = flag.String("budget-bench", "EvaluatorSteadyState|EngineThroughput", "regex of benchmarks the allocs/op budget applies to")
		baseline     = flag.String("baseline", "", "committed snapshot to gate regressions against; empty disables the gate")
		maxNsRegress = flag.Float64("max-ns-regress", 0.25, "max fractional ns/op regression vs -baseline before failing")
		gateBench    = flag.String("gate-bench", "", "regex of benchmarks the baseline ns/op gate applies to; empty gates all (allocs/op comparisons always apply)")
		count        = flag.Int("count", 1, "benchmark repetitions (go test -count); per-benchmark minimum is kept, the noise-robust estimator")
		gomaxprocs   = flag.Int("gomaxprocs", 0, "GOMAXPROCS for the benchmark child process; 0 pins it to the baseline's recorded count (falling back to the current count without one)")
	)
	flag.Parse()

	// Read the baseline before benches run (and before -out — possibly the
	// same file — is rewritten).
	var base *Snapshot
	if *baseline != "" {
		loaded, err := readSnapshot(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: baseline: %v\n", err)
			os.Exit(1)
		}
		base = loaded
	}

	// Pin the benchmark child's processor count so timings stay comparable
	// to the baseline regardless of the runner shape benchsnap happens to
	// be invoked on.
	procs := *gomaxprocs
	if procs <= 0 {
		if base != nil && base.GoMaxProcs > 0 {
			procs = base.GoMaxProcs
		} else {
			procs = runtime.GOMAXPROCS(0)
		}
	}
	if base != nil && base.GoMaxProcs > 0 && procs == base.GoMaxProcs {
		fmt.Printf("benchsnap: benchmarks pinned to GOMAXPROCS=%d (baseline machine class)\n", procs)
	} else {
		fmt.Printf("benchsnap: benchmarks run at GOMAXPROCS=%d\n", procs)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), ".")
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", procs))
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: go test: %v\n%s", err, raw)
		os.Exit(1)
	}
	benches, err := parseBench(string(raw), procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	benches = mergeMin(benches)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines matched")
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: procs,
		BenchTime:  *benchtime,
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: wrote %s (%d benchmarks)\n", *out, len(benches))

	re, err := regexp.Compile(*budgetBench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: bad -budget-bench: %v\n", err)
		os.Exit(1)
	}
	failed := false
	for _, b := range benches {
		if !re.MatchString(b.Name) {
			continue
		}
		status := "ok"
		if b.AllocsPerOp > *budget {
			status = "OVER BUDGET"
			failed = true
		}
		fmt.Printf("benchsnap: %-40s %g allocs/op (budget %g) %s\n",
			b.Name, b.AllocsPerOp, *budget, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchsnap: evaluation path exceeds its allocs/op budget")
		os.Exit(1)
	}

	if violations := checkFloors(benches, floors.specs); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchsnap: floor exceeded: %s\n", v)
		}
		os.Exit(1)
	}
	for _, spec := range floors.specs {
		fmt.Printf("benchsnap: floor %s ≤ %g allocs/op ok\n", spec.expr, spec.max)
	}

	if base != nil {
		// With the child pinned to the baseline's recorded count (the
		// default), sameEnv holds by construction and the full ns/op gate is
		// armed; it only drops when -gomaxprocs forces a different count or
		// the baseline predates the gomaxprocs field.
		sameEnv := base.GoMaxProcs == 0 || base.GoMaxProcs == procs
		if !sameEnv {
			fmt.Printf("benchsnap: baseline %s was recorded at GOMAXPROCS=%d (run at %d): timing and goroutine-alloc comparisons downgraded to notes\n",
				*baseline, base.GoMaxProcs, procs)
		}
		var nsGate *regexp.Regexp
		if *gateBench != "" {
			nsGate, err = regexp.Compile(*gateBench)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: bad -gate-bench: %v\n", err)
				os.Exit(1)
			}
		}
		regressions, notes := compareBaseline(base.Benchmarks, benches, *maxNsRegress, sameEnv, nsGate)
		for _, n := range notes {
			fmt.Printf("benchsnap: %s\n", n)
		}
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchsnap: regression: %s\n", r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: %d regression(s) against baseline %s\n", len(regressions), *baseline)
			os.Exit(1)
		}
		fmt.Printf("benchsnap: no regressions against %s (ns/op tolerance %+.0f%%)\n",
			*baseline, *maxNsRegress*100)
	}
}

// floorSpec is one parsed -floor entry: an allocs/op ceiling for the
// benchmarks its regex matches.
type floorSpec struct {
	expr string
	re   *regexp.Regexp
	max  float64
}

// floorFlag collects repeatable -floor values of the form regex=allocs.
type floorFlag struct{ specs []floorSpec }

func (f *floorFlag) String() string {
	var parts []string
	for _, s := range f.specs {
		parts = append(parts, fmt.Sprintf("%s=%g", s.expr, s.max))
	}
	return strings.Join(parts, ",")
}

// Set parses one regex=allocs spec; the split is on the last '=' so regexes
// containing one still parse.
func (f *floorFlag) Set(v string) error {
	i := strings.LastIndex(v, "=")
	if i <= 0 {
		return fmt.Errorf("floor %q: want regex=allocs", v)
	}
	expr, num := v[:i], v[i+1:]
	re, err := regexp.Compile(expr)
	if err != nil {
		return fmt.Errorf("floor %q: %v", v, err)
	}
	max, err := strconv.ParseFloat(num, 64)
	if err != nil || max < 0 || math.IsNaN(max) || math.IsInf(max, 0) {
		return fmt.Errorf("floor %q: bad allocs/op bound %q", v, num)
	}
	f.specs = append(f.specs, floorSpec{expr: expr, re: re, max: max})
	return nil
}

// checkFloors returns one violation message per benchmark exceeding a -floor
// ceiling that matches it. A floor matching no benchmark is a violation too:
// a silently renamed benchmark must not disarm its gate.
func checkFloors(benches []Benchmark, specs []floorSpec) []string {
	var violations []string
	for _, spec := range specs {
		matched := false
		for _, b := range benches {
			if !spec.re.MatchString(b.Name) {
				continue
			}
			matched = true
			if b.AllocsPerOp > spec.max {
				violations = append(violations, fmt.Sprintf(
					"%s: %g allocs/op over floor %g (-floor %s)",
					b.Name, b.AllocsPerOp, spec.max, spec.expr))
			}
		}
		if !matched {
			violations = append(violations, fmt.Sprintf(
				"floor %s=%g matched no benchmark in this run", spec.expr, spec.max))
		}
	}
	return violations
}

// mergeMin collapses repeated -count runs of the same benchmark into one
// entry holding the per-metric minimum (scheduler and neighbor noise only
// ever inflate a measurement, so the minimum is the noise-robust estimate
// both the snapshot and the regression gate should see). First-appearance
// order is preserved.
func mergeMin(benches []Benchmark) []Benchmark {
	index := make(map[string]int, len(benches))
	var out []Benchmark
	for _, b := range benches {
		i, seen := index[b.Name]
		if !seen {
			index[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		if b.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = b.NsPerOp
		}
		if b.BytesPerOp < out[i].BytesPerOp {
			out[i].BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp < out[i].AllocsPerOp {
			out[i].AllocsPerOp = b.AllocsPerOp
		}
	}
	return out
}

// readSnapshot loads a previously written benchmark snapshot.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &snap, nil
}

// compareBaseline gates fresh results against a baseline snapshot: a
// benchmark regresses when its ns/op exceeds the baseline by more than the
// fractional tolerance, or when its allocs/op grows. Zero-alloc baselines
// admit no drift at all — those are exact contracts; nonzero baselines get
// a 2-alloc / 2% grace, whichever is larger, absorbing the goroutine-stack
// recycling noise inherent to the parallel benchmarks (a real leak clears
// it immediately). A baseline benchmark missing from the fresh run is a
// regression too; fresh benchmarks without a baseline are reported as notes
// only.
//
// sameEnv=false means the baseline was recorded under a different processor
// count (a different machine class): wall-clock timings and the parallel
// benchmarks' goroutine-spawn allocations scale with GOMAXPROCS, so the
// ns/op and nonzero-alloc comparisons are downgraded to notes — comparing
// them across environments would fail builds with no code change. The
// zero-alloc contracts and the missing-benchmark check stay enforced.
//
// A non-nil nsGate restricts the ns/op comparison to benchmarks it matches
// (-gate-bench): reference legs of an A/B pair whose own wall clock is too
// noisy to gate stay in the trajectory without arming a timing failure.
// Allocs/op comparisons and the missing-benchmark check ignore the gate.
func compareBaseline(base, fresh []Benchmark, nsTolerance float64, sameEnv bool, nsGate *regexp.Regexp) (regressions, notes []string) {
	freshByName := make(map[string]Benchmark, len(fresh))
	for _, b := range fresh {
		freshByName[b.Name] = b
	}
	flag := func(enforced bool, msg string) {
		if enforced {
			regressions = append(regressions, msg)
		} else {
			notes = append(notes, msg+" (different machine class, not enforced)")
		}
	}
	baseNames := make(map[string]bool, len(base))
	for _, old := range base {
		baseNames[old.Name] = true
		now, ok := freshByName[old.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from this run", old.Name))
			continue
		}
		if limit := old.NsPerOp * (1 + nsTolerance); now.NsPerOp > limit {
			msg := fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (>%+.0f%%)",
				old.Name, now.NsPerOp, old.NsPerOp, nsTolerance*100)
			if nsGate != nil && !nsGate.MatchString(old.Name) {
				notes = append(notes, msg+" (outside -gate-bench, not enforced)")
			} else {
				flag(sameEnv, msg)
			}
		}
		allocLimit := old.AllocsPerOp
		if allocLimit > 0 {
			grace := 0.02 * allocLimit
			if grace < 2 {
				grace = 2
			}
			allocLimit += grace
		}
		if now.AllocsPerOp > allocLimit {
			flag(sameEnv || old.AllocsPerOp == 0,
				fmt.Sprintf("%s: %g allocs/op vs baseline %g",
					old.Name, now.AllocsPerOp, old.AllocsPerOp))
		}
	}
	for _, b := range fresh {
		if !baseNames[b.Name] {
			notes = append(notes, fmt.Sprintf("%s: new benchmark, no baseline yet", b.Name))
		}
	}
	return regressions, notes
}

// parseBench extracts benchmark result lines of the form
//
//	BenchmarkName-8   10   123456 ns/op   42 watts   100 B/op   3 allocs/op
//
// tolerating any number of custom unit pairs. procs is the GOMAXPROCS the
// benchmark child ran under — the testing package appends it as a -N name
// suffix (omitted at 1), which is stripped so snapshot names stay stable
// across machine classes. Trimming the known suffix exactly (rather than
// any trailing -digits) keeps benchmark names that legitimately end in a
// dash-number intact.
func parseBench(out string, procs int) ([]Benchmark, error) {
	suffix := ""
	if procs != 1 {
		suffix = fmt.Sprintf("-%d", procs)
	}
	var benches []Benchmark
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if suffix != "" {
			name = strings.TrimSuffix(name, suffix)
		}
		b := Benchmark{
			Name:       name,
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		benches = append(benches, b)
	}
	return benches, nil
}
