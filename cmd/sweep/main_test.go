package main

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sleepscale/internal/colstore"
)

func sweepOpts(colOut string) sweepOptions {
	return sweepOptions{
		workload: "DNS", rho: 0.3, states: "C0(i)S0(i),C6S3",
		jobs: 400, step: 0.2, beta: 1, profile: "xeon", seed: 1, colOut: colOut,
	}
}

// TestRunSweepColRoundTrip pins the columnar result sink: every TSV row
// lands in the column file with the state resolved through the dictionary,
// and the file aggregates with the colq query engine.
func TestRunSweepColRoundTrip(t *testing.T) {
	colPath := filepath.Join(t.TempDir(), "sweep.col")
	var out strings.Builder
	if err := runSweep(sweepOpts(colPath), &out); err != nil {
		t.Fatal(err)
	}
	var tsv [][]string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "state\t") {
			continue
		}
		tsv = append(tsv, strings.Split(line, "\t"))
	}
	if len(tsv) == 0 {
		t.Fatal("sweep produced no rows")
	}

	r, err := colstore.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Schema().Kind != colstore.KindSweep {
		t.Fatalf("kind = %d, want KindSweep", r.Schema().Kind)
	}
	if r.Rows() != len(tsv) {
		t.Fatalf("column file has %d rows, TSV %d", r.Rows(), len(tsv))
	}
	dict := r.Schema().Dict
	if len(dict) != 2 || dict[0] != "C0(i)S0(i)" || dict[1] != "C6S3" {
		t.Fatalf("dictionary = %v", dict)
	}
	var states, fs, powers []float64
	for b := 0; b < r.NumBlocks(); b++ {
		for c, dst := range []*[]float64{&states, &fs, nil, &powers} {
			if dst == nil {
				continue
			}
			v, err := r.Col(b, c, nil)
			if err != nil {
				t.Fatal(err)
			}
			*dst = append(*dst, v...)
		}
	}
	for i, row := range tsv {
		if got := dict[int(states[i])]; got != row[0] {
			t.Fatalf("row %d: state %q, TSV %q", i, got, row[0])
		}
		f, _ := strconv.ParseFloat(row[1], 64)
		if diff := fs[i] - f; diff > 5e-4 || diff < -5e-4 {
			t.Fatalf("row %d: f %v, TSV %v", i, fs[i], f)
		}
		p, _ := strconv.ParseFloat(row[3], 64)
		if diff := powers[i] - p; diff > 5e-3 || diff < -5e-3 {
			t.Fatalf("row %d: power %v, TSV %v", i, powers[i], p)
		}
	}

	// The file answers colq-style aggregations: min power per state.
	res, err := colstore.Query{Col: "avg_power", Op: colstore.Min, GroupBy: "state"}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("per-state groups = %+v", res.Groups)
	}
	for _, g := range res.Groups {
		if g.Value <= 0 {
			t.Fatalf("non-positive min power in group %+v", g)
		}
	}
}

// TestRunSweepColAppends pins the append-across-runs behavior: a second
// sweep doubles the rows and reuses the dictionary.
func TestRunSweepColAppends(t *testing.T) {
	colPath := filepath.Join(t.TempDir(), "sweep.col")
	var out strings.Builder
	if err := runSweep(sweepOpts(colPath), &out); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	first := r.Rows()
	r.Close()
	if err := runSweep(sweepOpts(colPath), &out); err != nil {
		t.Fatal(err)
	}
	r, err = colstore.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 2*first {
		t.Fatalf("after second run: %d rows, want %d", r.Rows(), 2*first)
	}
	if len(r.Schema().Dict) != 2 {
		t.Fatalf("dictionary grew: %v", r.Schema().Dict)
	}
}

func TestRunSweepRejects(t *testing.T) {
	for name, mutate := range map[string]func(*sweepOptions){
		"workload": func(o *sweepOptions) { o.workload = "nope" },
		"profile":  func(o *sweepOptions) { o.profile = "nope" },
		"state":    func(o *sweepOptions) { o.states = "C9S9" },
	} {
		o := sweepOpts("")
		mutate(&o)
		var out strings.Builder
		if err := runSweep(o, &out); err == nil {
			t.Errorf("%s: bad options accepted", name)
		}
	}
}
