// Command sweep characterizes the power/response trade-off of one or more
// sleep states for a workload at a fixed utilization, sweeping the DVFS
// frequency — the §4 methodology behind Figures 1–5. Output is a TSV of
// (state, f, µE[R], E[P]) rows suitable for plotting.
//
// Usage:
//
//	sweep -workload DNS -rho 0.1 -states "C0(i)S0(i),C6S0(i),C6S3" \
//	      -jobs 10000 -step 0.01 -beta 1 -profile xeon
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sleepscale"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		workloadName = flag.String("workload", "DNS", "workload: DNS, Mail or Google")
		rho          = flag.Float64("rho", 0.1, "utilization ρ = λ/µ")
		statesFlag   = flag.String("states", "C0(i)S0(i),C6S0(i),C6S3", "comma-separated state names")
		jobs         = flag.Int("jobs", 10000, "jobs per policy evaluation")
		step         = flag.Float64("step", 0.01, "frequency sweep step")
		beta         = flag.Float64("beta", 1, "service-rate frequency exponent β")
		profileName  = flag.String("profile", "xeon", "power profile: xeon or atom")
		seed         = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	spec, err := specByName(*workloadName)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := profileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	stats, err = stats.AtUtilization(*rho)
	if err != nil {
		log.Fatal(err)
	}
	stream := stats.Jobs(*jobs, rand.New(rand.NewSource(*seed)))
	mu := spec.MaxServiceRate()

	fmt.Printf("# workload=%s rho=%.3f beta=%.2f profile=%s jobs=%d\n",
		spec.Name, *rho, *beta, prof.Name, *jobs)
	fmt.Println("state\tf\tnorm_mean_response\tavg_power_w")
	for _, name := range strings.Split(*statesFlag, ",") {
		st, err := stateByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		space := sleepscale.PolicySpace{
			Plans:    []sleepscale.SleepPlan{sleepscale.SingleState(st)},
			FreqStep: *step,
			MinFreq:  0.05,
		}
		for _, f := range space.Frequencies(*rho, *beta) {
			pol := sleepscale.Policy{Frequency: f, Plan: space.Plans[0]}
			cfg, err := pol.Config(prof, *beta)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sleepscale.Simulate(stream, cfg, sleepscale.SimOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s\t%.3f\t%.4f\t%.3f\n",
				st, f, mu*res.MeanResponse, res.AvgPower)
		}
	}
}

func specByName(name string) (sleepscale.Spec, error) {
	switch strings.ToLower(name) {
	case "dns":
		return sleepscale.DNS(), nil
	case "mail":
		return sleepscale.Mail(), nil
	case "google":
		return sleepscale.Google(), nil
	}
	return sleepscale.Spec{}, fmt.Errorf("unknown workload %q", name)
}

func profileByName(name string) (*sleepscale.Profile, error) {
	switch strings.ToLower(name) {
	case "xeon":
		return sleepscale.Xeon(), nil
	case "atom":
		return sleepscale.Atom(), nil
	}
	return nil, fmt.Errorf("unknown profile %q", name)
}

func stateByName(name string) (sleepscale.State, error) {
	for _, s := range sleepscale.LowPowerStates() {
		if s.String() == name {
			return s, nil
		}
	}
	return sleepscale.State{}, fmt.Errorf("unknown state %q (want one of %v)",
		name, sleepscale.LowPowerStates())
}
