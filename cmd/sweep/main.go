// Command sweep characterizes the power/response trade-off of one or more
// sleep states for a workload at a fixed utilization, sweeping the DVFS
// frequency — the §4 methodology behind Figures 1–5. Output is a TSV of
// (state, f, µE[R], E[P]) rows suitable for plotting, and -col-out appends
// the same rows to a columnar result file cmd/colq can aggregate:
//
//	sweep -workload DNS -rho 0.1 -states "C0(i)S0(i),C6S0(i),C6S3" \
//	      -jobs 10000 -step 0.01 -beta 1 -profile xeon -col-out sweep.col
//	colq -f sweep.col -op min -col avg_power -group-by state
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strings"

	"sleepscale"
	"sleepscale/internal/colstore"
)

type sweepOptions struct {
	workload string
	rho      float64
	states   string
	jobs     int
	step     float64
	beta     float64
	profile  string
	seed     int64
	colOut   string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var o sweepOptions
	flag.StringVar(&o.workload, "workload", "DNS", "workload: DNS, Mail or Google")
	flag.Float64Var(&o.rho, "rho", 0.1, "utilization ρ = λ/µ")
	flag.StringVar(&o.states, "states", "C0(i)S0(i),C6S0(i),C6S3", "comma-separated state names")
	flag.IntVar(&o.jobs, "jobs", 10000, "jobs per policy evaluation")
	flag.Float64Var(&o.step, "step", 0.01, "frequency sweep step")
	flag.Float64Var(&o.beta, "beta", 1, "service-rate frequency exponent β")
	flag.StringVar(&o.profile, "profile", "xeon", "power profile: xeon or atom")
	flag.Int64Var(&o.seed, "seed", 1, "workload seed")
	flag.StringVar(&o.colOut, "col-out", "", "append (state, f, µE[R], E[P]) rows to this column file (query with colq)")
	flag.Parse()

	if err := runSweep(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// sweepSchema is the columnar layout of -col-out result files.
func sweepSchema() colstore.Schema {
	return colstore.Schema{
		Kind: colstore.KindSweep,
		Cols: []string{"state", "f", "norm_mean_response", "avg_power"},
	}
}

// runSweep evaluates every (state, frequency) policy point, streaming TSV
// rows to out and, when configured, appending them to the columnar sink.
func runSweep(o sweepOptions, out io.Writer) error {
	spec, err := specByName(o.workload)
	if err != nil {
		return err
	}
	prof, err := profileByName(o.profile)
	if err != nil {
		return err
	}
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		return err
	}
	stats, err = stats.AtUtilization(o.rho)
	if err != nil {
		return err
	}
	stream := stats.Jobs(o.jobs, rand.New(rand.NewSource(o.seed)))
	mu := spec.MaxServiceRate()

	var sink *colstore.FileWriter
	if o.colOut != "" {
		sink, err = colstore.Append(o.colOut, sweepSchema())
		if err != nil {
			return err
		}
		defer func() {
			if sink != nil {
				sink.Close()
			}
		}()
	}

	fmt.Fprintf(out, "# workload=%s rho=%.3f beta=%.2f profile=%s jobs=%d\n",
		spec.Name, o.rho, o.beta, prof.Name, o.jobs)
	fmt.Fprintln(out, "state\tf\tnorm_mean_response\tavg_power_w")
	row := make([]float64, 4)
	for _, name := range strings.Split(o.states, ",") {
		st, err := stateByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		space := sleepscale.PolicySpace{
			Plans:    []sleepscale.SleepPlan{sleepscale.SingleState(st)},
			FreqStep: o.step,
			MinFreq:  0.05,
		}
		for _, f := range space.Frequencies(o.rho, o.beta) {
			pol := sleepscale.Policy{Frequency: f, Plan: space.Plans[0]}
			cfg, err := pol.Config(prof, o.beta)
			if err != nil {
				return err
			}
			res, err := sleepscale.Simulate(stream, cfg, sleepscale.SimOptions{})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\t%.3f\t%.4f\t%.3f\n",
				st, f, mu*res.MeanResponse, res.AvgPower)
			if sink != nil {
				row[0] = sink.DictID(st.String())
				row[1] = f
				row[2] = mu * res.MeanResponse
				row[3] = res.AvgPower
				if err := sink.Append(row); err != nil {
					return err
				}
			}
		}
	}
	if sink != nil {
		err := sink.Close()
		sink = nil
		return err
	}
	return nil
}

func specByName(name string) (sleepscale.Spec, error) {
	switch strings.ToLower(name) {
	case "dns":
		return sleepscale.DNS(), nil
	case "mail":
		return sleepscale.Mail(), nil
	case "google":
		return sleepscale.Google(), nil
	}
	return sleepscale.Spec{}, fmt.Errorf("unknown workload %q", name)
}

func profileByName(name string) (*sleepscale.Profile, error) {
	switch strings.ToLower(name) {
	case "xeon":
		return sleepscale.Xeon(), nil
	case "atom":
		return sleepscale.Atom(), nil
	}
	return nil, fmt.Errorf("unknown profile %q", name)
}

func stateByName(name string) (sleepscale.State, error) {
	for _, s := range sleepscale.LowPowerStates() {
		if s.String() == name {
			return s, nil
		}
	}
	return sleepscale.State{}, fmt.Errorf("unknown state %q (want one of %v)",
		name, sleepscale.LowPowerStates())
}
