package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startFeed binds a socketFeed on a loopback TCP port and returns it with
// its dial address.
func startFeed(t *testing.T, timeout time.Duration, retries int) (*socketFeed, string) {
	t.Helper()
	f, err := newSocketFeed("tcp", "127.0.0.1:0", timeout, retries)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, f.l.Addr().String()
}

// readAll drains the feed until it errors, returning everything delivered.
func readAll(f *socketFeed) ([]byte, error) {
	var got []byte
	buf := make([]byte, 256)
	for {
		n, err := f.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			return got, err
		}
	}
}

// TestSocketFeedStalledClientCut: a producer that goes silent past the
// read deadline is cut, and a spent reconnect budget surfaces as an error
// instead of a hang.
func TestSocketFeedStalledClientCut(t *testing.T) {
	f, addr := startFeed(t, 100*time.Millisecond, 0)
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		conn.Write([]byte(wireMagic + "stall"))
		time.Sleep(5 * time.Second) // stall without closing
		conn.Close()
	}()
	done := make(chan struct{})
	var got []byte
	var err error
	go func() {
		got, err = readAll(f)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled client wedged the feed")
	}
	if string(got) != wireMagic+"stall" {
		t.Fatalf("delivered %q before the cut", got)
	}
	if err == nil || !strings.Contains(err.Error(), "reconnect budget spent") {
		t.Fatalf("want budget-spent error, got %v", err)
	}
}

// TestSocketFeedReconnectResumes: a dropped producer's replacement is
// accepted, its re-sent magic is stripped, and the byte stream continues
// seamlessly; when nobody reconnects after the last drop, the bounded
// accept deadline errors out instead of hanging.
func TestSocketFeedReconnectResumes(t *testing.T) {
	f, addr := startFeed(t, 300*time.Millisecond, 2)
	go func() {
		for _, payload := range []string{"AAAA", "BBBB"} {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			conn.Write([]byte(wireMagic + payload))
			conn.Close()
		}
	}()
	got, err := readAll(f)
	if string(got) != wireMagic+"AAAABBBB" {
		t.Fatalf("stitched stream = %q, want magic + AAAABBBB", got)
	}
	if err == nil || !strings.Contains(err.Error(), "no producer reconnected") {
		t.Fatalf("want accept-deadline error, got %v", err)
	}
}

// TestSocketFeedBadMagicRejected: a reconnecting producer that does not
// restart the wire stream is rejected explicitly.
func TestSocketFeedBadMagicRejected(t *testing.T) {
	f, addr := startFeed(t, 300*time.Millisecond, 3)
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		conn.Write([]byte(wireMagic + "data"))
		conn.Close()
		conn, err = net.Dial("tcp", addr)
		if err != nil {
			return
		}
		conn.Write([]byte("NOPE"))
		conn.Close()
	}()
	got, err := readAll(f)
	if string(got) != wireMagic+"data" {
		t.Fatalf("delivered %q", got)
	}
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}
}

// TestRunSocketStalledClient drives the whole daemon against a producer
// that sends half the stream and goes silent: the serve loop must return
// with an error instead of wedging forever.
func TestRunSocketStalledClient(t *testing.T) {
	dir := t.TempDir()
	streamPath := recordStream(t, dir)
	data, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "ss.sock")
	go func() {
		for i := 0; i < 100; i++ {
			conn, err := net.Dial("unix", sock)
			if err == nil {
				conn.Write(data[:len(data)/2])
				time.Sleep(10 * time.Second) // stall without closing
				conn.Close()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	o := defaults()
	o.listen = "unix:" + sock
	o.readTimeout = 100 * time.Millisecond
	done := make(chan error, 1)
	go func() { done <- run(o, &bytes.Buffer{}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled producer ended the run cleanly")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled producer wedged the serve loop")
	}
}

// TestRestoreMissingCheckpoint: -restore against a checkpoint that never
// existed must name both the primary path and the .prev fallback it tried.
func TestRestoreMissingCheckpoint(t *testing.T) {
	o := defaults()
	o.restore = true
	o.checkpoint = filepath.Join(t.TempDir(), "gone.ckpt")
	err := run(o, &bytes.Buffer{})
	if err == nil {
		t.Fatal("restore from a missing checkpoint succeeded")
	}
	if !strings.Contains(err.Error(), o.checkpoint) {
		t.Fatalf("error does not name the checkpoint path: %v", err)
	}
	if !strings.Contains(err.Error(), o.checkpoint+".prev") {
		t.Fatalf("error does not name the .prev fallback: %v", err)
	}
}

// TestFaultFlagValidation: the fault flags are rejected when inconsistent,
// and a schedule file must parse.
func TestFaultFlagValidation(t *testing.T) {
	o := defaults()
	o.faultsOut = "out.col"
	if _, err := buildConfig(o, nil); err == nil || !strings.Contains(err.Error(), "-faults-out needs -faults") {
		t.Fatalf("want -faults-out guard, got %v", err)
	}
	o = defaults()
	o.faults = filepath.Join(t.TempDir(), "missing.sched")
	if _, err := buildConfig(o, nil); err == nil {
		t.Fatal("missing schedule file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.sched")
	if err := os.WriteFile(bad, []byte("1.0 0 explode\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o = defaults()
	o.faults = bad
	if _, err := buildConfig(o, nil); err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("want parse error naming %s, got %v", bad, err)
	}
}

// TestRunWithFaultSchedule: a scripted outage sheds the covered arrivals,
// reports them in the summary, and tees the applied events to the fault
// log.
func TestRunWithFaultSchedule(t *testing.T) {
	dir := t.TempDir()
	streamPath := recordStream(t, dir)
	sched := filepath.Join(dir, "outage.sched")
	if err := os.WriteFile(sched, []byte("60 0 crash\n600 0 repair\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := defaults()
	o.listen = streamPath
	o.faults = sched
	o.faultsOut = filepath.Join(dir, "faults.col")
	out := &bytes.Buffer{}
	if err := run(o, out); err != nil {
		t.Fatal(err)
	}
	last := out.String()[strings.LastIndex(strings.TrimSpace(out.String()), "\n")+1:]
	if !strings.Contains(last, `"jobs_shed":`) || strings.Contains(last, `"jobs_shed":0,`) {
		t.Fatalf("summary does not report shed jobs: %s", last)
	}
	if !strings.Contains(last, `"crashes":1`) || !strings.Contains(last, `"repairs":1`) {
		t.Fatalf("summary does not report the outage: %s", last)
	}
	rows := readLog(t, o.faultsOut)
	if len(rows) != 2 || rows[0][0] != 60 || rows[1][0] != 600 {
		t.Fatalf("fault log rows = %v", rows)
	}
}
