package main

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// wireMagic mirrors the serve wire format's stream opener: every producer
// (a fresh WireWriter) starts its stream with these four bytes.
const wireMagic = "SSW1"

// socketFeed adapts a listening socket into the daemon's event stream with
// a read deadline and a bounded reconnect loop, so a producer that stalls
// or drops its connection can never wedge the serve loop forever:
//
//   - A connection that delivers no bytes for timeout is cut loose and the
//     feed goes back to accepting (the first accept waits indefinitely — a
//     daemon may start long before its load generator).
//   - After a cut, the next producer must connect and speak within timeout;
//     each stall or drop spends one unit of the reconnect budget, and a
//     spent budget surfaces as a read error the serve loop drains on.
//   - A reconnecting producer restarts its wire stream, so the feed strips
//     and verifies the re-sent magic on every connection after the first —
//     the daemon's reader sees one continuous stream. The producer is
//     responsible for resuming from where its previous connection left off
//     (the -replay flag covers feeds that restart from the beginning).
type socketFeed struct {
	l        net.Listener
	timeout  time.Duration
	retries  int
	accepted bool // first producer already seen

	mu     sync.Mutex // guards conn/closed against the signal-handler Close
	conn   net.Conn
	closed bool
}

func newSocketFeed(network, addr string, timeout time.Duration, retries int) (*socketFeed, error) {
	if retries < 0 {
		return nil, fmt.Errorf("feed: reconnect budget must be >= 0, got %d", retries)
	}
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &socketFeed{l: l, timeout: timeout, retries: retries}, nil
}

// Read serves the next chunk of the event stream, transparently cutting
// stalled producers and accepting replacements. Called from the serve loop
// only.
func (f *socketFeed) Read(p []byte) (int, error) {
	for {
		conn, err := f.current()
		if err != nil {
			return 0, err
		}
		if f.timeout > 0 {
			conn.SetReadDeadline(time.Now().Add(f.timeout))
		}
		n, err := conn.Read(p)
		if n > 0 {
			return n, nil
		}
		if err == nil {
			continue
		}
		if f.isClosed() {
			return 0, err // part of the graceful drain
		}
		f.drop(conn)
		if f.retries <= 0 {
			return 0, fmt.Errorf("feed: producer stalled or dropped (%v); reconnect budget spent", err)
		}
		f.retries--
	}
}

// current returns the live connection, accepting one if none is bound.
func (f *socketFeed) current() (net.Conn, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, net.ErrClosed
	}
	if c := f.conn; c != nil {
		f.mu.Unlock()
		return c, nil
	}
	f.mu.Unlock()
	return f.accept()
}

// accept binds the next producer connection. The first accept waits
// indefinitely; re-accepts after a cut are deadline-bounded so an absent
// replacement cannot wedge the loop either.
func (f *socketFeed) accept() (net.Conn, error) {
	if d, ok := f.l.(interface{ SetDeadline(time.Time) error }); ok {
		var dl time.Time
		if f.accepted && f.timeout > 0 {
			dl = time.Now().Add(f.timeout)
		}
		d.SetDeadline(dl) // the zero time clears a previous deadline
	}
	conn, err := f.l.Accept()
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() && !f.isClosed() {
			return nil, fmt.Errorf("feed: no producer reconnected within %v", f.timeout)
		}
		return nil, err
	}
	if f.accepted {
		if err := f.stripMagic(conn); err != nil {
			conn.Close()
			return nil, err
		}
	}
	f.accepted = true
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		conn.Close()
		return nil, net.ErrClosed
	}
	f.conn = conn
	f.mu.Unlock()
	return conn, nil
}

// stripMagic consumes and verifies the wire magic a reconnecting producer
// re-sends at the head of its fresh stream.
func (f *socketFeed) stripMagic(conn net.Conn) error {
	if f.timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(f.timeout))
	}
	var m [len(wireMagic)]byte
	if _, err := io.ReadFull(conn, m[:]); err != nil {
		return fmt.Errorf("feed: reconnected producer sent no stream header: %w", err)
	}
	if string(m[:]) != wireMagic {
		return fmt.Errorf("feed: reconnected producer sent bad magic %q", m)
	}
	return nil
}

// drop cuts a producer connection loose after a stall or disconnect.
func (f *socketFeed) drop(conn net.Conn) {
	conn.Close()
	f.mu.Lock()
	if f.conn == conn {
		f.conn = nil
	}
	f.mu.Unlock()
}

func (f *socketFeed) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Close tears the feed down: safe to call from the signal-handler
// goroutine; it unblocks a pending Read or Accept.
func (f *socketFeed) Close() error {
	f.mu.Lock()
	f.closed = true
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	return f.l.Close()
}
