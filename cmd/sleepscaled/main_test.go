package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sleepscale"
)

// defaults mirrors the flag defaults for direct run() calls.
func defaults() options {
	return options{
		listen: "-", workload: "DNS", profile: "xeon",
		strategy: "sleepscale", predictor: "lms", lmsOrder: 10, lmsStep: 0.5,
		epochSlots: 5, slotSeconds: 60, qos: 0.8, evalJobs: 200, alpha: 0.1,
		seed: 1, checkpointEvery: 16,
	}
}

// recordStream writes a small daily-window scenario as a wire-stream file
// and returns its path and slot count.
func recordStream(t *testing.T, dir string) string {
	t.Helper()
	tr, err := sleepscale.EmailStoreTrace(1, 3).DailyWindow(300, 360)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sleepscale.NewIdealizedStats(sleepscale.DNS())
	if err != nil {
		t.Fatal(err)
	}
	src, err := sleepscale.NewTraceSource(stats, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "stream.ssw")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := sleepscale.FeedWire(sleepscale.NewWireWriter(f), src,
		sleepscale.SliceSlots(tr.Utilization), tr.SlotSeconds); err != nil {
		t.Fatal(err)
	}
	return path
}

func readLog(t *testing.T, path string) [][]float64 {
	t.Helper()
	r, err := sleepscale.OpenCol(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ncols := len(r.Schema().Cols)
	cols := make([][]float64, ncols)
	for b := 0; b < r.NumBlocks(); b++ {
		for c := 0; c < ncols; c++ {
			v, err := r.Col(b, c, nil)
			if err != nil {
				t.Fatal(err)
			}
			cols[c] = append(cols[c], v...)
		}
	}
	rows := make([][]float64, r.Rows())
	for i := range rows {
		rows[i] = make([]float64, ncols)
		for c := range cols {
			rows[i][c] = cols[c][i]
		}
	}
	return rows
}

func TestBuildConfigRejects(t *testing.T) {
	for name, mutate := range map[string]func(*options){
		"workload":           func(o *options) { o.workload = "nope" },
		"profile":            func(o *options) { o.profile = "nope" },
		"strategy":           func(o *options) { o.strategy = "nope" },
		"predictor":          func(o *options) { o.predictor = "nope" },
		"restore-without-ck": func(o *options) { o.restore = true },
	} {
		o := defaults()
		mutate(&o)
		if _, err := buildConfig(o, nil); err == nil {
			t.Errorf("%s: bad options accepted", name)
		}
	}
}

func TestBuildConfigVariants(t *testing.T) {
	for _, strat := range []string{"sleepscale", "analytic", "race", "static"} {
		for _, pred := range []string{"lms", "lms-cusum", "naive"} {
			o := defaults()
			o.strategy, o.predictor = strat, pred
			cfg, err := buildConfig(o, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", strat, pred, err)
			}
			if cfg.Runner.Strategy == nil || cfg.Runner.Predictor == nil {
				t.Fatalf("%s/%s: nil runner pieces", strat, pred)
			}
		}
	}
}

// TestRunFileFeedKillRestore drives the daemon end to end over a recorded
// stream file: an uninterrupted run, then a run off a truncated copy (the
// producer dies) restored with -replay — the stitched epoch log must match
// the uninterrupted one row for row.
func TestRunFileFeedKillRestore(t *testing.T) {
	dir := t.TempDir()
	streamPath := recordStream(t, dir)
	full, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}

	refOut := &bytes.Buffer{}
	ref := defaults()
	ref.listen = streamPath
	ref.epochsOut = filepath.Join(dir, "ref.col")
	if err := run(ref, refOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(refOut.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON output too short: %q", refOut.String())
	}
	if !strings.Contains(lines[len(lines)-1], `"done":true`) {
		t.Fatalf("missing summary line: %s", lines[len(lines)-1])
	}
	if !strings.Contains(lines[0], `"epoch":0`) || !strings.Contains(lines[0], `"plan":"`) {
		t.Fatalf("first epoch line malformed: %s", lines[0])
	}

	cutPath := filepath.Join(dir, "cut.ssw")
	if err := os.WriteFile(cutPath, full[:len(full)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	victim := defaults()
	victim.listen = cutPath
	victim.checkpoint = filepath.Join(dir, "ss.ckpt")
	victim.checkpointEvery = 3
	victim.epochsOut = filepath.Join(dir, "live.col")
	if err := run(victim, &bytes.Buffer{}); err == nil {
		t.Fatal("truncated feed exited cleanly")
	}

	restored := victim
	restored.listen = streamPath
	restored.restore = true
	restored.replay = true
	if err := run(restored, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	got, want := readLog(t, victim.epochsOut), readLog(t, ref.epochsOut)
	if len(got) != len(want) {
		t.Fatalf("stitched log has %d rows, reference %d", len(got), len(want))
	}
	for i := range got {
		for c := range got[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("row %d col %d: %v != %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

// TestRunUnixSocket serves one connection over a Unix socket.
func TestRunUnixSocket(t *testing.T) {
	dir := t.TempDir()
	streamPath := recordStream(t, dir)
	data, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "ss.sock")
	go func() {
		for i := 0; i < 100; i++ {
			conn, err := net.Dial("unix", sock)
			if err == nil {
				conn.Write(data)
				conn.Close()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	o := defaults()
	o.listen = "unix:" + sock
	out := &bytes.Buffer{}
	if err := run(o, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"done":true`) {
		t.Fatal("socket-fed run did not emit a summary")
	}
}

func TestOpenFeedRejectsMissing(t *testing.T) {
	if _, err := openFeed(options{listen: filepath.Join(t.TempDir(), "missing.ssw")}); err == nil {
		t.Fatal("missing stream file accepted")
	}
}
