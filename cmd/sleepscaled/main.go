// Command sleepscaled runs SleepScale as a live daemon: job arrivals and
// per-slot utilization telemetry stream in over the binary wire protocol,
// per-epoch stats and policy decisions stream out as NDJSON on stdout, and
// the runner state checkpoints durably so a killed daemon restarts
// bit-identically to one that never stopped.
//
// Usage:
//
//	sleepscaled -listen - < week.ssw
//	sleepscaled -listen unix:/run/sleepscale.sock -checkpoint ss.ckpt
//	sleepscaled -listen tcp:127.0.0.1:7070 -strategy sleepscale -predictor lms
//	sleepscaled -listen week.ssw -restore -replay -checkpoint ss.ckpt
//
// -listen takes "-" (stdin), "unix:<path>" or "tcp:<addr>", or a plain path
// to a recorded wire stream. Socket feeds carry a read deadline and a
// bounded reconnect budget (-read-timeout, -reconnects): a producer that
// stalls or drops is cut loose and a replacement may reconnect with a fresh
// wire stream — a wedged client can never hang the serve loop. With
// -checkpoint the daemon persists its state every -checkpoint-every epochs
// and on SIGTERM/SIGINT; -restore resumes from that checkpoint (reporting
// whether the primary file or its rotated .prev snapshot was used), and
// -replay tells the daemon the feed restarts from the beginning of the
// stream (a replayed pipe or file) so already-served events are skipped.
// -epochs-out tees closed epochs to a colstore log for cmd/colq, exactly
// once across restarts.
//
// -faults gates ingest with a scripted outage timeline for the daemon's
// single server (server 0 in the schedule): arrivals inside a crash..repair
// window are shed and accounted in the summary, and -faults-out tees the
// applied events to a colstore fault log.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sleepscale"
)

type options struct {
	listen      string
	workload    string
	profile     string
	strategy    string
	predictor   string
	lmsOrder    int
	lmsStep     float64
	epochSlots  int
	slotSeconds float64
	qos         float64
	evalJobs    int
	alpha       float64
	window      int
	seed        int64

	checkpoint      string
	checkpointEvery int
	restore         bool
	replay          bool
	epochsOut       string

	faults      string
	faultsOut   string
	readTimeout time.Duration
	reconnects  int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sleepscaled: ")
	var o options
	flag.StringVar(&o.listen, "listen", "-", `feed: "-" (stdin), "unix:<path>", "tcp:<addr>", or a recorded stream file`)
	flag.StringVar(&o.workload, "workload", "DNS", "workload spec: DNS, Mail or Google (sets µ and β)")
	flag.StringVar(&o.profile, "profile", "xeon", "power profile: xeon or atom")
	flag.StringVar(&o.strategy, "strategy", "sleepscale", "strategy: sleepscale, analytic, race or static")
	flag.StringVar(&o.predictor, "predictor", "lms", "predictor: lms, lms-cusum or naive")
	flag.IntVar(&o.lmsOrder, "lms-order", 10, "LMS history depth")
	flag.Float64Var(&o.lmsStep, "lms-step", 0.5, "LMS adaptation step")
	flag.IntVar(&o.epochSlots, "T", 5, "telemetry slots per policy epoch")
	flag.Float64Var(&o.slotSeconds, "slot-seconds", 60, "telemetry slot length in seconds")
	flag.Float64Var(&o.qos, "qos", 0.8, "QoS budget factor ρ_B for the mean-response constraint")
	flag.IntVar(&o.evalJobs, "eval-jobs", 200, "bootstrap jobs per candidate policy evaluation")
	flag.Float64Var(&o.alpha, "alpha", 0.1, "over-provisioning factor α")
	flag.IntVar(&o.window, "window", 0, "job-log window in epochs (0 = runner default)")
	flag.Int64Var(&o.seed, "seed", 1, "decision-stream seed")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint path (empty disables durability)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 16, "checkpoint cadence in epochs")
	flag.BoolVar(&o.restore, "restore", false, "resume from -checkpoint instead of starting fresh")
	flag.BoolVar(&o.replay, "replay", false, "with -restore: the feed restarts from the beginning of the stream")
	flag.StringVar(&o.epochsOut, "epochs-out", "", "tee per-epoch records to this column file (query with colq)")
	flag.StringVar(&o.faults, "faults", "", `scripted outage schedule file ("<time> <server> crash|repair" per line; server 0 is the daemon)`)
	flag.StringVar(&o.faultsOut, "faults-out", "", "with -faults: append applied fault events to this column file (query with colq)")
	flag.DurationVar(&o.readTimeout, "read-timeout", time.Minute, "socket feeds: cut a producer that sends nothing for this long (0 disables)")
	flag.IntVar(&o.reconnects, "reconnects", 4, "socket feeds: producer reconnects allowed after a stall or drop")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run builds the server and drives it over the feed, draining gracefully on
// SIGTERM/SIGINT.
func run(o options, out io.Writer) error {
	cfg, err := buildConfig(o, out)
	if err != nil {
		return err
	}
	var srv *sleepscale.ServeServer
	if o.restore {
		srv, err = sleepscale.RestoreServeServer(cfg, o.replay)
	} else {
		srv, err = sleepscale.NewServeServer(cfg)
	}
	if err != nil {
		return err
	}
	if o.restore {
		if from := srv.RestoredFrom(); from != o.checkpoint {
			log.Printf("checkpoint %s missing or damaged; restored from rotated previous snapshot %s", o.checkpoint, from)
		} else {
			log.Printf("restored from checkpoint %s", from)
		}
	}
	feed, err := openFeed(o)
	if err != nil {
		return err
	}
	defer feed.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		if _, ok := <-sig; ok {
			srv.Stop()
			feed.Close() // unblock a pending read; part of the drain
		}
	}()

	_, done, err := srv.Serve(feed)
	if err != nil {
		return err
	}
	if !done {
		log.Printf("drained at epoch %d (slot %d); state persisted to %s",
			srv.Runner().Epoch(), srv.Runner().Slot(), o.checkpoint)
	}
	return nil
}

// buildConfig resolves the flag set into a serve configuration.
func buildConfig(o options, out io.Writer) (sleepscale.ServeConfig, error) {
	var zero sleepscale.ServeConfig
	if o.restore && o.checkpoint == "" {
		return zero, fmt.Errorf("-restore needs -checkpoint")
	}
	if o.faultsOut != "" && o.faults == "" {
		return zero, fmt.Errorf("-faults-out needs -faults")
	}
	var faults sleepscale.FaultSource
	if o.faults != "" {
		text, err := os.ReadFile(o.faults)
		if err != nil {
			return zero, err
		}
		faults, err = sleepscale.ParseFaultSchedule(string(text))
		if err != nil {
			return zero, fmt.Errorf("%s: %w", o.faults, err)
		}
	}
	spec, err := specByName(o.workload)
	if err != nil {
		return zero, err
	}
	prof, err := profileByName(o.profile)
	if err != nil {
		return zero, err
	}
	pred, err := buildPredictor(o)
	if err != nil {
		return zero, err
	}
	strat, err := buildStrategy(o, spec, prof)
	if err != nil {
		return zero, err
	}
	return sleepscale.ServeConfig{
		Runner: sleepscale.LiveConfig{
			SlotSeconds:  o.slotSeconds,
			EpochSlots:   o.epochSlots,
			FreqExponent: spec.FreqExponent,
			Profile:      prof,
			Predictor:    pred,
			Strategy:     strat,
			WindowEpochs: o.window,
			Seed:         o.seed,
		},
		CheckpointPath:  o.checkpoint,
		CheckpointEvery: o.checkpointEvery,
		EpochLogPath:    o.epochsOut,
		Out:             out,
		Faults:          faults,
		FaultLogPath:    o.faultsOut,
	}, nil
}

func buildPredictor(o options) (sleepscale.Predictor, error) {
	switch strings.ToLower(o.predictor) {
	case "lms":
		return sleepscale.NewLMSPredictor(o.lmsOrder, o.lmsStep)
	case "lms-cusum":
		return sleepscale.NewLMSCUSUMPredictor(o.lmsOrder, o.lmsStep)
	case "naive":
		return sleepscale.NewNaivePredictor(), nil
	}
	return nil, fmt.Errorf("unknown predictor %q", o.predictor)
}

func buildStrategy(o options, spec sleepscale.Spec, prof *sleepscale.Profile) (sleepscale.Strategy, error) {
	name := strings.ToLower(o.strategy)
	switch name {
	case "sleepscale", "analytic":
		qos, err := sleepscale.NewMeanResponseQoS(o.qos, spec.MaxServiceRate())
		if err != nil {
			return nil, err
		}
		m := sleepscale.NewManager(prof, spec, qos)
		if name == "analytic" {
			return sleepscale.NewAnalyticSleepScaleStrategy(m, o.alpha)
		}
		return sleepscale.NewSleepScaleStrategy(m, o.evalJobs, o.alpha)
	case "race":
		return sleepscale.NewRaceToHaltStrategy(sleepscale.DeepSleep)
	case "static":
		pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
		return sleepscale.NewStaticStrategy(pol, "static"), nil
	}
	return nil, fmt.Errorf("unknown strategy %q", o.strategy)
}

func specByName(name string) (sleepscale.Spec, error) {
	switch strings.ToLower(name) {
	case "dns":
		return sleepscale.DNS(), nil
	case "mail":
		return sleepscale.Mail(), nil
	case "google":
		return sleepscale.Google(), nil
	}
	return sleepscale.Spec{}, fmt.Errorf("unknown workload %q", name)
}

func profileByName(name string) (*sleepscale.Profile, error) {
	switch strings.ToLower(name) {
	case "xeon":
		return sleepscale.Xeon(), nil
	case "atom":
		return sleepscale.Atom(), nil
	}
	return nil, fmt.Errorf("unknown profile %q", name)
}

// openFeed resolves -listen into a readable event stream: stdin, a socket
// feed (with read deadline and bounded producer reconnects), or a recorded
// stream file.
func openFeed(o options) (io.ReadCloser, error) {
	switch {
	case o.listen == "-":
		return os.Stdin, nil
	case strings.HasPrefix(o.listen, "unix:"):
		return newSocketFeed("unix", strings.TrimPrefix(o.listen, "unix:"), o.readTimeout, o.reconnects)
	case strings.HasPrefix(o.listen, "tcp:"):
		return newSocketFeed("tcp", strings.TrimPrefix(o.listen, "tcp:"), o.readTimeout, o.reconnects)
	}
	return os.Open(o.listen)
}
