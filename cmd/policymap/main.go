// Command policymap prints the optimal (frequency, sleep state) policy as a
// function of utilization — one Figure 6 curve. Both the idealized
// closed-form model and simulation over empirical (BigHouse-surrogate)
// statistics are supported.
//
// Usage:
//
//	policymap -workload Google -rhob 0.8 -qos mean -model idealized
package main

import (
	"flag"
	"fmt"
	"log"

	"sleepscale/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("policymap: ")
	var (
		workloadName = flag.String("workload", "DNS", "workload: DNS, Mail or Google")
		rhoB         = flag.Float64("rhob", 0.8, "baseline peak design utilization ρ_b")
		qosKind      = flag.String("qos", "mean", "QoS kind: mean or p95")
		model        = flag.String("model", "idealized", "model: idealized or empirical")
		rhoStep      = flag.Float64("rhostep", 0.05, "utilization grid step")
		jobs         = flag.Int("jobs", 10000, "jobs per simulated evaluation (empirical model)")
		step         = flag.Float64("step", 0.01, "frequency grid step")
		seed         = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.EvalJobs = *jobs
	cfg.FreqStep = *step
	cfg.Seed = *seed

	res, err := experiments.Figure6(cfg, experiments.Figure6Options{
		Workloads: []string{*workloadName},
		QoSKinds:  []string{*qosKind},
		RhoBs:     []float64{*rhoB},
		Models:    []string{*model},
		RhoStep:   *rhoStep,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Tables() {
		fmt.Println(t.String())
	}
}
