package main

import (
	"bytes"
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sleepscale"
)

// farmEpochLog runs a small 3-server farm under the epoch runner and writes
// its per-epoch records to a column file, one WriteEpochLog call (= one
// block) per epoch so footer skipping is observable. Returns the path and
// the report.
func farmEpochLog(t *testing.T) (string, sleepscale.FarmRunReport) {
	t.Helper()
	st, err := sleepscale.NewIdealizedStats(sleepscale.DNS())
	if err != nil {
		t.Fatal(err)
	}
	util := make([]float64, 12)
	for i := range util {
		util[i] = 0.2 + 0.05*float64(i%4)
	}
	tr := &sleepscale.Trace{Name: "colq-test", SlotSeconds: 60, Utilization: util}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg := sleepscale.RunnerConfig{
		Stats:        st,
		FreqExponent: sleepscale.DNS().FreqExponent,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   3,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
		Seed:         1,
	}
	src, err := sleepscale.NewTraceSource(st, tr, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sleepscale.RunFarmEpochs(cfg, 3, sleepscale.JSQ{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 4 {
		t.Fatalf("run produced %d epochs, want 4", len(rep.Epochs))
	}
	path := filepath.Join(t.TempDir(), "epochs.col")
	for i := range rep.Epochs {
		if err := sleepscale.WriteEpochLog(path, rep.Epochs[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	return path, rep
}

// TestPerEpochMeanEnergy is the headline use case: colq answers a per-epoch
// mean-energy group-by over a recorded farm run, matching the report.
func TestPerEpochMeanEnergy(t *testing.T) {
	path, rep := farmEpochLog(t)
	var out bytes.Buffer
	if err := run([]string{"-f", path, "-op", "mean", "-col", "energy", "-group-by", "epoch"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+len(rep.Epochs) {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	for i, rec := range rep.Epochs {
		fields := strings.Fields(lines[1+i])
		if len(fields) != 3 {
			t.Fatalf("line %q", lines[1+i])
		}
		if fields[0] != strconv.Itoa(rec.Index) {
			t.Fatalf("row %d keyed %q, want epoch %d", i, fields[0], rec.Index)
		}
		got, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		// One row per epoch, so the mean is the record's energy; %g prints
		// shortest-round-trip, so the parse is bit-exact.
		if math.Float64bits(got) != math.Float64bits(rec.Energy) {
			t.Fatalf("epoch %d mean energy %v, want %v", rec.Index, got, rec.Energy)
		}
		if fields[2] != "1" {
			t.Fatalf("epoch %d row count %q, want 1", rec.Index, fields[2])
		}
	}
}

// TestWhereSkipsBlocks pins the CLI's filter path to footer skipping: each
// epoch is its own block, so an equality filter scans exactly one.
func TestWhereSkipsBlocks(t *testing.T) {
	path, rep := farmEpochLog(t)
	var out bytes.Buffer
	err := run([]string{"-f", path, "-op", "sum", "-col", "energy", "-where", "epoch=2", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	want := "blocks: 1 scanned, 3 skipped by footer"
	if !strings.Contains(out.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, out.String())
	}
	fields := strings.Fields(strings.Split(out.String(), "\n")[0])
	got, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		t.Fatalf("output %q: %v", out.String(), err)
	}
	if math.Float64bits(got) != math.Float64bits(rep.Epochs[2].Energy) {
		t.Fatalf("sum over epoch 2 = %v, want %v", got, rep.Epochs[2].Energy)
	}
}

func TestDescribe(t *testing.T) {
	path, _ := farmEpochLog(t)
	var out bytes.Buffer
	if err := run([]string{"-f", path, "-describe"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"epochs, 4 rows in 4 blocks", "energy", "p95_delay", "dictionary:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("describe output missing %q:\n%s", want, s)
		}
	}
}

func TestParseWhere(t *testing.T) {
	fs, err := parseWhere(" epoch>=2 , epoch<=5 ,plan=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("parsed %d filters, want 2 (range clauses merged)", len(fs))
	}
	if fs[0].Col != "epoch" || fs[0].Lo != 2 || fs[0].Hi != 5 {
		t.Fatalf("epoch filter = %+v", fs[0])
	}
	if fs[1].Col != "plan" || fs[1].Lo != 1 || fs[1].Hi != 1 {
		t.Fatalf("plan filter = %+v", fs[1])
	}
	for _, bad := range []string{"epoch", "epoch>two", "epoch=x", ">=3"} {
		if _, err := parseWhere(bad); err == nil && bad != ">=3" {
			t.Errorf("parseWhere(%q) accepted", bad)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path, _ := farmEpochLog(t)
	var out bytes.Buffer
	for _, args := range [][]string{
		{},                                   // no file
		{"-f", path},                         // no column
		{"-f", path, "-col", "nope"},         // unknown column
		{"-f", path + "x", "-col", "energy"}, // missing file
		{"-f", path, "-col", "energy", "-op", "median"}, // unknown op
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
