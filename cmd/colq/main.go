// Command colq aggregates sleepscale column files (utilization traces,
// recorded job streams, epoch and event logs) without materializing them:
// blocks whose min/max footers cannot satisfy the filters are skipped
// unread, and on a memory-mapped file the scanned blocks are read in place.
//
// Usage:
//
//	colq -f run.col -describe
//	colq -f epochs.col -op mean -col energy -group-by epoch
//	colq -f epochs.col -op p95 -col p95_delay -where 'epoch>=10,epoch<=20'
//	colq -f events.col -op sum -col size -where 'epoch=7' -stats
//
// -where takes a comma-separated conjunction of closed-interval predicates
// (col=value, col>=value, col<=value); combine >= and <= on one column for a
// range. Operators: count, sum, mean, min, max, p50, p95, p99.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"sleepscale/internal/colstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("colq: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("colq", flag.ContinueOnError)
	var (
		path     = fs.String("f", "", "column file to query")
		describe = fs.Bool("describe", false, "print the file's schema and block layout, then exit")
		op       = fs.String("op", "mean", "aggregation: count, sum, mean, min, max, p50, p95, p99")
		col      = fs.String("col", "", "column to aggregate")
		groupBy  = fs.String("group-by", "", "column whose values partition the rows")
		where    = fs.String("where", "", "comma-separated predicates: col=v, col>=v, col<=v")
		stats    = fs.Bool("stats", false, "also print blocks scanned/skipped")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" {
		return fmt.Errorf("no input file (-f)")
	}
	r, err := colstore.Open(*path)
	if err != nil {
		return err
	}
	defer r.Close()

	if *describe {
		return printDescribe(out, *path, r)
	}
	if *col == "" {
		return fmt.Errorf("no column to aggregate (-col); try -describe")
	}
	agg, err := colstore.ParseAgg(*op)
	if err != nil {
		return err
	}
	filters, err := parseWhere(*where)
	if err != nil {
		return err
	}
	res, err := colstore.Query{Col: *col, Op: agg, GroupBy: *groupBy, Filters: filters}.Run(r)
	if err != nil {
		return err
	}

	dict := r.Schema().Dict
	if *groupBy == "" {
		if len(res.Groups) == 0 {
			fmt.Fprintf(out, "%s(%s) = NaN (0 rows)\n", agg, *col)
		} else {
			fmt.Fprintf(out, "%s(%s) = %g (%d rows)\n", agg, *col, res.Groups[0].Value, res.Rows)
		}
	} else {
		fmt.Fprintf(out, "%-16s %16s %8s\n", *groupBy, fmt.Sprintf("%s(%s)", agg, *col), "rows")
		for _, g := range res.Groups {
			fmt.Fprintf(out, "%-16s %16g %8d\n", groupKey(*groupBy, g.Key, dict), g.Value, g.Count)
		}
	}
	if *stats {
		fmt.Fprintf(out, "blocks: %d scanned, %d skipped by footer\n", res.BlocksScanned, res.BlocksSkipped)
	}
	return nil
}

// groupKey renders a group-by key: dictionary columns ("plan" in epoch
// logs, "state" in sweep results) resolve ids to names, everything else
// prints the number.
func groupKey(col string, key float64, dict []string) string {
	if col == "plan" || col == "state" {
		if i := int(key); float64(i) == key && i >= 0 && i < len(dict) {
			return dict[i]
		}
	}
	return strconv.FormatFloat(key, 'g', -1, 64)
}

var kindNames = map[uint16]string{
	colstore.KindTrace:  "trace",
	colstore.KindJobs:   "jobs",
	colstore.KindEpochs: "epochs",
	colstore.KindEvents: "events",
	colstore.KindSweep:  "sweep",
}

func printDescribe(out io.Writer, path string, r *colstore.Reader) error {
	s := r.Schema()
	kind := kindNames[s.Kind]
	if kind == "" {
		kind = fmt.Sprintf("kind-%d", s.Kind)
	}
	fmt.Fprintf(out, "%s: %s, %d rows in %d blocks", path, kind, r.Rows(), r.NumBlocks())
	if s.SlotSeconds > 0 {
		fmt.Fprintf(out, ", %gs slots", s.SlotSeconds)
	}
	if r.Mapped() {
		fmt.Fprint(out, ", mmap")
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-16s %16s %16s\n", "column", "min", "max")
	for c, name := range s.Cols {
		if r.NumBlocks() == 0 {
			fmt.Fprintf(out, "%-16s %16s %16s\n", name, "-", "-")
			continue
		}
		lo, hi := r.ColRange(0, c)
		for b := 1; b < r.NumBlocks(); b++ {
			l, h := r.ColRange(b, c)
			if l < lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
		}
		fmt.Fprintf(out, "%-16s %16g %16g\n", name, lo, hi)
	}
	if len(s.Dict) > 0 {
		fmt.Fprintf(out, "dictionary: %s\n", strings.Join(s.Dict, ", "))
	}
	return nil
}

// parseWhere parses the -where conjunction. Each clause is col=value
// (equality, a degenerate closed interval), col>=value or col<=value;
// clauses on the same column intersect.
func parseWhere(arg string) ([]colstore.Filter, error) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return nil, nil
	}
	byCol := make(map[string]*colstore.Filter)
	var order []string
	for _, clause := range strings.Split(arg, ",") {
		clause = strings.TrimSpace(clause)
		var col, valStr string
		var lo, hi bool
		switch {
		case strings.Contains(clause, ">="):
			parts := strings.SplitN(clause, ">=", 2)
			col, valStr, lo = parts[0], parts[1], true
		case strings.Contains(clause, "<="):
			parts := strings.SplitN(clause, "<=", 2)
			col, valStr, hi = parts[0], parts[1], true
		case strings.Contains(clause, "="):
			parts := strings.SplitN(clause, "=", 2)
			col, valStr, lo, hi = parts[0], parts[1], true, true
		default:
			return nil, fmt.Errorf("bad predicate %q (want col=v, col>=v or col<=v)", clause)
		}
		col = strings.TrimSpace(col)
		v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", clause, err)
		}
		f := byCol[col]
		if f == nil {
			inf := math.Inf(1)
			f = &colstore.Filter{Col: col, Lo: -inf, Hi: inf}
			byCol[col] = f
			order = append(order, col)
		}
		if lo && v > f.Lo {
			f.Lo = v
		}
		if hi && v < f.Hi {
			f.Hi = v
		}
	}
	out := make([]colstore.Filter, 0, len(order))
	for _, col := range order {
		out = append(out, *byCol[col])
	}
	return out, nil
}
