// Command farmsim drives the two §7 future-work extensions: a farm of
// single-core servers behind a dispatcher, or one multi-core chip with a
// shared platform. It sweeps the machine count and reports the
// power/response scale-out curve.
//
// Usage:
//
//	farmsim -mode farm -sizes 1,2,4,8 -dispatch jsq -lambda 4 -mu 5
//	farmsim -mode farm -stream -parallel -sizes 4,16 -dispatch pd2
//	farmsim -mode chip -sizes 1,2,4 -lambda 14 -mu 5
//
// With -stream the farm mode never materializes the job stream: jobs are
// pulled from a stationary source in bounded chunks through the streaming
// dispatch loop (the state-dependent dispatchers included), and -parallel
// adds the time-sliced parallel simulation on the persistent worker pool —
// bit-identical to the sequential dispatch. In that mode jsq and lwl route
// through an O(log k) index over the availability shadow; -linear falls
// back to the Θ(k) linear scan (identical results — the flag exists for
// A/B timing at large k). Dispatchers: jsq, rr, random, pd<d> (power-of-d
// choices) and lwl (least work left, wake-aware).
//
// With -trace the farm instead runs the epoch-policy loop over a
// utilization trace (synthetic name, CSV or columnar path), and -epochs-out
// appends each size's per-epoch records to a column file for cmd/colq:
//
//	farmsim -trace email-store -sizes 2,4 -epochs-out epochs.col
//
// Adding -coordinate upgrades the trace run to the fleet coordinator:
// per-server predictors and policy decisions, an optional -quorum staggered
// sleep rotation (that many active servers always no deeper than C1), and
// -park horizontal scaling (surplus servers drained, deep-slept and removed
// from routing). -epochs-out then appends the fleet epoch-log schema —
// per-epoch records zipped with active/parked/shallow/unparked rollups:
//
//	farmsim -trace email-store -sizes 8 -coordinate -quorum 2 -park
//
// Fault injection rides on the coordinator: -faults replays a scripted
// crash/repair schedule ("<time> <server> crash|repair" per line) while
// -mtbf/-mttr draws seeded per-server outages; lost in-flight jobs are
// re-dispatched under -retry-budget/-retry-backoff and the applied events
// tee to a column file with -faults-out:
//
//	farmsim -trace email-store -sizes 8 -coordinate -park \
//	    -mtbf 14400 -mttr 600 -faults-out faults.col
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"sleepscale"
	"sleepscale/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("farmsim: ")
	var (
		mode       = flag.String("mode", "farm", "farm (dispatched servers) or chip (shared platform)")
		sizesArg   = flag.String("sizes", "1,2,4", "comma-separated machine/core counts")
		dispatch   = flag.String("dispatch", "jsq", "farm dispatcher: jsq, rr, random, pd<d> (power-of-d choices, e.g. pd2) or lwl (least work left)")
		lambda     = flag.Float64("lambda", 4, "aggregate arrival rate (jobs/s)")
		mu         = flag.Float64("mu", 5, "per-server (or per-core) max service rate (jobs/s)")
		jobs       = flag.Int("jobs", 50000, "jobs to simulate")
		seed       = flag.Int64("seed", 1, "seed")
		streaming  = flag.Bool("stream", false, "farm mode: pull jobs from a streaming source (O(chunk) memory) instead of materializing")
		parallel   = flag.Bool("parallel", false, "with -stream: time-sliced parallel simulation (bit-identical results)")
		linear     = flag.Bool("linear", false, "with -stream -parallel: route via the linear shadow scan instead of the O(log k) index (bit-identical; for A/B timing)")
		traceArg   = flag.String("trace", "", "run the epoch-policy farm over this utilization trace (email-store, file-server, or a CSV/columnar path) instead of the stationary sweep")
		epochT     = flag.Int("T", 5, "with -trace: trace slots per policy epoch")
		epochsOut  = flag.String("epochs-out", "", "with -trace: append per-epoch records to this column file (query with colq)")
		coordinate = flag.Bool("coordinate", false, "with -trace: run the fleet coordinator (per-server predictors and policies) instead of the shared epoch loop")
		quorum     = flag.Int("quorum", 0, "with -coordinate: rotate deep sleep so this many active servers always stay no deeper than C1")
		park       = flag.Bool("park", false, "with -coordinate: park surplus servers (drain, deep-sleep, remove from routing)")
		faultsArg  = flag.String("faults", "", "with -coordinate: inject the crash/repair schedule in this file (\"<time> <server> crash|repair\" per line)")
		mtbf       = flag.Float64("mtbf", 0, "with -coordinate: draw seeded per-server crashes with this mean time between failures (seconds); needs -mttr")
		mttr       = flag.Float64("mttr", 0, "with -coordinate: mean time to repair (seconds) for -mtbf failures")
		retryN     = flag.Int("retry-budget", 3, "with -faults/-mtbf: times a lost job may be re-dispatched before it is dropped")
		retryWait  = flag.Float64("retry-backoff", 0.1, "with -faults/-mtbf: seconds per attempt added to a lost job's re-dispatch instant")
		faultsOut  = flag.String("faults-out", "", "with -faults/-mtbf: append the applied fault events to this column file (query with colq)")
	)
	flag.Parse()

	sizes, err := parseSizes(*sizesArg)
	if err != nil {
		log.Fatal(err)
	}
	if *traceArg != "" {
		fc := fleetFlags{
			coordinate: *coordinate, quorum: *quorum, park: *park,
			faultsFile: *faultsArg, mtbf: *mtbf, mttr: *mttr,
			retry:     sleepscale.FaultRetryPolicy{Budget: *retryN, Backoff: *retryWait},
			faultsOut: *faultsOut,
		}
		if err := runTraceFarm(sizes, *traceArg, *epochT, *dispatch, *seed, *epochsOut, fc); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *coordinate || *quorum != 0 || *park || *faultsArg != "" || *mtbf > 0 || *mttr > 0 || *faultsOut != "" {
		log.Fatal("-coordinate, -quorum, -park, -faults, -mtbf/-mttr and -faults-out need -trace")
	}
	// The materialized job slice only exists outside -stream farm runs —
	// materializing it anyway would do exactly the work the flag avoids.
	var stream []sleepscale.Job
	if *mode != "farm" || !*streaming {
		rng := rand.New(rand.NewSource(*seed))
		stream = make([]sleepscale.Job, *jobs)
		tnow := 0.0
		for i := range stream {
			tnow += rng.ExpFloat64() / *lambda
			stream[i] = sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / *mu}
		}
	}

	fmt.Printf("mode=%s λ=%.2f/s µ=%.2f/s jobs=%d stream=%v\n\n", *mode, *lambda, *mu, *jobs, *streaming)
	fmt.Printf("%6s  %10s  %10s  %12s\n", "k", "E[R] (s)", "P95 (s)", "E[P] (W)")
	for _, k := range sizes {
		switch *mode {
		case "farm":
			pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
			cfg, err := pol.Config(sleepscale.Xeon(), 1)
			if err != nil {
				log.Fatal(err)
			}
			disp, err := buildDispatcher(*dispatch, *seed, cfg)
			if err != nil {
				log.Fatal(err)
			}
			var res sleepscale.FarmResult
			if *streaming {
				src, err := buildStream(*lambda, *mu, *jobs, *seed)
				if err != nil {
					log.Fatal(err)
				}
				res, err = sleepscale.RunFarmSource(k, cfg, disp, src,
					sleepscale.FarmDispatchOptions{Parallel: *parallel, LinearRouting: *linear})
				if err != nil {
					log.Fatal(err)
				}
			} else {
				res, err = sleepscale.RunFarm(k, cfg, disp, stream)
				if err != nil {
					log.Fatal(err)
				}
			}
			var p95 float64
			for _, s := range res.PerServer {
				if s.ResponseP95 > p95 {
					p95 = s.ResponseP95
				}
			}
			fmt.Printf("%6d  %10.4f  %10.4f  %12.2f\n", k, res.MeanResponse, p95, res.TotalAvgPower)
		case "chip":
			cfg := sleepscale.MultiCoreConfig{
				Cores: k, Frequency: 1, FreqExponent: 1,
				CPUActivePower: 130.0 / 4,
				CoreSleep: []sleepscale.MultiCorePhase{
					{Name: "C6", Power: 15.0 / 4, WakeLatency: 1e-3, EnterAfter: 0},
				},
				PlatformActivePower: 120,
				PlatformIdlePower:   60.5,
				PlatformSleepPower:  13.1,
				PlatformSleepAfter:  2,
				PlatformWakeLatency: 1,
			}
			res, err := sleepscale.SimulateMultiCore(stream, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d  %10.4f  %10.4f  %12.2f\n", k, res.MeanResponse, res.ResponseP95, res.AvgPower)
		default:
			log.Fatalf("unknown mode %q", *mode)
		}
	}
}

// fleetFlags carries the -coordinate family into the trace runner.
type fleetFlags struct {
	coordinate bool
	quorum     int
	park       bool
	faultsFile string
	mtbf, mttr float64
	retry      sleepscale.FaultRetryPolicy
	faultsOut  string
}

// buildFaults resolves the fault flags into a source for a k-server fleet
// over a trace lasting horizon seconds, or nil when no injection was asked
// for. A scripted -faults file and a seeded -mtbf/-mttr renewal process are
// mutually exclusive.
func (fc fleetFlags) buildFaults(k int, horizon float64, seed int64) (sleepscale.FaultSource, error) {
	script, renewal := fc.faultsFile != "", fc.mtbf > 0 || fc.mttr > 0
	if !script && !renewal {
		return nil, nil
	}
	if !fc.coordinate {
		return nil, fmt.Errorf("-faults and -mtbf/-mttr need -coordinate")
	}
	if script && renewal {
		return nil, fmt.Errorf("-faults and -mtbf/-mttr are mutually exclusive")
	}
	if script {
		text, err := os.ReadFile(fc.faultsFile)
		if err != nil {
			return nil, err
		}
		sched, err := sleepscale.ParseFaultSchedule(string(text))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fc.faultsFile, err)
		}
		return sched, nil
	}
	if fc.mtbf <= 0 || fc.mttr <= 0 {
		return nil, fmt.Errorf("-mtbf and -mttr must both be positive (got %g and %g)", fc.mtbf, fc.mttr)
	}
	return sleepscale.NewFaultRenewal(sleepscale.FaultRenewalConfig{
		Servers: k, MTBF: fc.mtbf, MTTR: fc.mttr, Horizon: horizon,
	}, seed)
}

// runTraceFarm sweeps farm sizes through the epoch-policy runner over a
// utilization trace — or, with -coordinate, through the fleet coordinator —
// optionally appending every size's per-epoch records to one columnar log
// (runs are distinguished by append order — epoch indices restart at 0 per
// run).
func runTraceFarm(sizes []int, traceName string, epochT int, dispatch string, seed int64, epochsOut string, fc fleetFlags) error {
	if !fc.coordinate && (fc.quorum != 0 || fc.park) {
		return fmt.Errorf("-quorum and -park need -coordinate")
	}
	if !fc.coordinate && (fc.faultsFile != "" || fc.mtbf > 0 || fc.mttr > 0 || fc.faultsOut != "") {
		return fmt.Errorf("-faults, -mtbf/-mttr and -faults-out need -coordinate")
	}
	for _, k := range sizes {
		if fc.quorum > k {
			return fmt.Errorf("quorum %d exceeds fleet size %d: a duty window cannot hold more servers than the fleet (use -quorum ≤ the smallest -sizes entry)", fc.quorum, k)
		}
	}
	tr, err := loadFarmTrace(traceName, seed)
	if err != nil {
		return err
	}
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		return err
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	qcfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		return err
	}
	cfg := sleepscale.RunnerConfig{
		Stats:        stats,
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   epochT,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
		Seed:         seed,
	}
	fmt.Printf("trace=%s (%d slots) T=%d dispatch=%s coordinate=%v\n\n", traceName, tr.Len(), epochT, dispatch, fc.coordinate)
	if fc.coordinate {
		fmt.Printf("%6s  %10s  %10s  %12s  %8s  %8s  %8s\n", "k", "E[R] (s)", "P95 (s)", "E[P] (W)", "epochs", "EP", "jobs/kJ")
	} else {
		fmt.Printf("%6s  %10s  %10s  %12s  %8s\n", "k", "E[R] (s)", "P95 (s)", "E[P] (W)", "epochs")
	}
	for _, k := range sizes {
		disp, err := buildDispatcher(dispatch, seed, qcfg)
		if err != nil {
			return err
		}
		src, err := sleepscale.NewTraceSource(stats, tr, seed)
		if err != nil {
			return err
		}
		if fc.coordinate {
			faults, err := fc.buildFaults(k, tr.Duration(), seed)
			if err != nil {
				return err
			}
			coord, err := sleepscale.NewFleetCoordinator(sleepscale.FleetConfig{
				Servers:      k,
				FreqExponent: spec.FreqExponent,
				Profile:      sleepscale.Xeon(),
				Trace:        tr,
				EpochSlots:   epochT,
				Strategy:     cfg.Strategy,
				PerServer:    true,
				NewPredictor: sleepscale.NewNaivePredictor,
				Seed:         seed,
				Dispatcher:   disp,
				Quorum:       fc.quorum,
				Park:         fc.park,
				Faults:       faults,
				Retry:        fc.retry,
			})
			if err != nil {
				return err
			}
			rep, err := coord.Run(src)
			if err != nil {
				return err
			}
			fmt.Printf("%6d  %10.4f  %10.4f  %12.2f  %8d  %8.4f  %8.2f\n",
				k, rep.MeanResponse, rep.P95Response, rep.AvgPower, len(rep.Epochs),
				rep.EnergyProportionality, rep.JobsPerJoule*1e3)
			if faults != nil {
				fmt.Printf("        faults: %d crashes, %d repairs; jobs: %d offered = %d completed + %d requeued + %d dropped (%d retries)\n",
					rep.Crashes, rep.Repairs, rep.Offered, rep.Completed, rep.Requeued, rep.Dropped, rep.Retries)
			}
			if epochsOut != "" {
				if err := sleepscale.WriteFleetEpochLog(epochsOut, rep); err != nil {
					return err
				}
			}
			if fc.faultsOut != "" {
				if err := sleepscale.WriteFaultLog(fc.faultsOut, rep.FaultEvents); err != nil {
					return err
				}
			}
			continue
		}
		rep, err := sleepscale.RunFarmEpochs(cfg, k, disp, src)
		if err != nil {
			return err
		}
		fmt.Printf("%6d  %10.4f  %10.4f  %12.2f  %8d\n",
			k, rep.MeanResponse, rep.P95Response, rep.AvgPower, len(rep.Epochs))
		if epochsOut != "" {
			if err := sleepscale.WriteEpochLog(epochsOut, rep.Epochs); err != nil {
				return err
			}
		}
	}
	if epochsOut != "" {
		fmt.Printf("\nepoch records appended to %s (try: colq -f %s -op mean -col energy -group-by epoch)\n",
			epochsOut, epochsOut)
	}
	return nil
}

// loadFarmTrace resolves -trace: a synthetic day by name, or a file sniffed
// as columnar (magic "SSCL") or CSV.
func loadFarmTrace(name string, seed int64) (*sleepscale.Trace, error) {
	switch name {
	case "email-store":
		return sleepscale.EmailStoreTrace(1, seed), nil
	case "file-server":
		return sleepscale.FileServerTrace(1, seed), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var head [4]byte
	if n, _ := f.ReadAt(head[:], 0); n == 4 && string(head[:]) == "SSCL" {
		return trace.ReadCol(name)
	}
	return trace.ReadCSV(f)
}

func parseSizes(arg string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(arg, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad size %q", s)
		}
		out = append(out, k)
	}
	return out, nil
}

// buildStream returns the streaming analogue of the materialized M/M job
// slice: a stationary Poisson/exponential source generating ≈jobs arrivals
// (horizon = jobs/λ), pulled in bounded chunks by the dispatch loop.
func buildStream(lambda, mu float64, jobs int, seed int64) (sleepscale.StreamSource, error) {
	inter, err := sleepscale.FitDistribution(1/lambda, 1)
	if err != nil {
		return nil, err
	}
	size, err := sleepscale.FitDistribution(1/mu, 1)
	if err != nil {
		return nil, err
	}
	return sleepscale.NewStationarySource(
		sleepscale.Stats{Inter: inter, Size: size}, float64(jobs)/lambda, seed)
}

// buildDispatcher resolves a -dispatch name. "pd<d>" (pd2, pd3, …) is the
// power-of-d-choices family; "lwl" is least-work-left, which prices wake-up
// latency from the farm's operating configuration cfg.
func buildDispatcher(name string, seed int64, cfg sleepscale.SimConfig) (sleepscale.Dispatcher, error) {
	switch name {
	case "jsq":
		return sleepscale.JSQ{}, nil
	case "rr":
		return &sleepscale.RoundRobin{}, nil
	case "random":
		return &sleepscale.RandomDispatch{Rng: rand.New(rand.NewSource(seed + 1))}, nil
	case "lwl":
		return &sleepscale.LeastWorkLeft{Cfg: cfg}, nil
	}
	if d, ok := strings.CutPrefix(name, "pd"); ok {
		n, err := strconv.Atoi(d)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad power-of-d dispatcher %q (want pd2, pd3, …)", name)
		}
		return &sleepscale.PowerOfD{D: n, Rng: rand.New(rand.NewSource(seed + 1))}, nil
	}
	return nil, fmt.Errorf("unknown dispatcher %q (supported: jsq, rr, random, pd<d>, lwl)", name)
}
