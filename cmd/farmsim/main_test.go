package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sleepscale"
	"sleepscale/internal/colstore"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1, 2,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 16 {
		t.Errorf("parseSizes = %v", got)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestBuildStream(t *testing.T) {
	src, err := buildStream(4, 5, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := sleepscale.CollectSource(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A Poisson(4/s) stream over a 250 s horizon: ≈1000 arrivals, sorted.
	if len(jobs) < 800 || len(jobs) > 1200 {
		t.Errorf("generated %d jobs, want ≈1000", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("stream not sorted by arrival")
		}
	}
	if _, err := buildStream(-1, 5, 1000, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestBuildDispatcher(t *testing.T) {
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"jsq", "rr", "random", "pd2", "pd3", "lwl"} {
		if _, err := buildDispatcher(name, 1, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	d, err := buildDispatcher("pd4", 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pd, ok := d.(*sleepscale.PowerOfD); !ok || pd.D != 4 {
		t.Errorf("pd4 built %#v", d)
	}
	for _, bad := range []string{"nope", "pd", "pd0", "pd-1", "pdx"} {
		if _, err := buildDispatcher(bad, 1, cfg); err == nil {
			t.Errorf("dispatcher %q accepted", bad)
		}
	}
}

// TestRunTraceFarmWritesEpochLog drives the -trace path end to end on a tiny
// CSV trace and checks the appended columnar log covers both farm sizes.
func TestRunTraceFarmWritesEpochLog(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	var buf strings.Builder
	buf.WriteString("slot,utilization\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&buf, "%d,0.3\n", i)
	}
	if err := os.WriteFile(csvPath, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "epochs.col")
	if err := runTraceFarm([]int{1, 2}, csvPath, 3, "jsq", 1, logPath, fleetFlags{}); err != nil {
		t.Fatal(err)
	}
	r, err := sleepscale.OpenCol(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// 6 slots at T=3 → 2 epochs per run, two runs appended.
	if r.Rows() != 4 {
		t.Fatalf("epoch log has %d rows, want 4", r.Rows())
	}
	res, err := colstore.Query{Col: "energy", Op: colstore.Mean, GroupBy: "epoch"}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 || res.Groups[0].Count != 2 {
		t.Fatalf("per-epoch groups = %+v", res.Groups)
	}
}

// TestRunTraceFarmCoordinated drives -coordinate -quorum -park end to end
// and checks the fleet epoch-log schema lands in the columnar output.
func TestRunTraceFarmCoordinated(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	var buf strings.Builder
	buf.WriteString("slot,utilization\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&buf, "%d,0.3\n", i)
	}
	if err := os.WriteFile(csvPath, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "fleet.col")
	fc := fleetFlags{coordinate: true, quorum: 2, park: true}
	if err := runTraceFarm([]int{4}, csvPath, 3, "jsq", 1, logPath, fc); err != nil {
		t.Fatal(err)
	}
	r, err := sleepscale.OpenCol(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Schema().Kind != colstore.KindFleetEpochs {
		t.Fatalf("log kind = %d, want fleet epochs (%d)", r.Schema().Kind, colstore.KindFleetEpochs)
	}
	// 12 slots at T=3 → 4 epochs; every epoch honors the quorum floor.
	if r.Rows() != 4 {
		t.Fatalf("fleet log has %d rows, want 4", r.Rows())
	}
	res, err := colstore.Query{Col: "shallow", Op: colstore.Min}.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Value < 2 {
		t.Fatalf("quorum violated in log: min shallow = %g, want ≥ 2", res.Groups[0].Value)
	}
}

// TestRunTraceFarmRejectsBadFleetFlags pins the flag validation: a quorum
// larger than the smallest fleet, and quorum/park without -coordinate.
func TestRunTraceFarmRejectsBadFleetFlags(t *testing.T) {
	err := runTraceFarm([]int{4}, "email-store", 3, "jsq", 1, "",
		fleetFlags{coordinate: true, quorum: 5})
	if err == nil || !strings.Contains(err.Error(), "exceeds fleet size") {
		t.Fatalf("quorum 5 over 4 servers: err = %v", err)
	}
	err = runTraceFarm([]int{4}, "email-store", 3, "jsq", 1, "", fleetFlags{quorum: 2})
	if err == nil || !strings.Contains(err.Error(), "-coordinate") {
		t.Fatalf("quorum without coordinate: err = %v", err)
	}
}

func TestLoadFarmTraceSniffs(t *testing.T) {
	dir := t.TempDir()
	colPath := filepath.Join(dir, "t.col")
	if err := sleepscale.WriteColTrace(sleepscale.EmailStoreTrace(1, 2), colPath); err != nil {
		t.Fatal(err)
	}
	tr, err := loadFarmTrace(colPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1440 {
		t.Fatalf("columnar day has %d slots, want 1440", tr.Len())
	}
	if _, err := loadFarmTrace(filepath.Join(dir, "missing"), 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
