package main

import (
	"testing"

	"sleepscale"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1, 2,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 16 {
		t.Errorf("parseSizes = %v", got)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestBuildStream(t *testing.T) {
	src, err := buildStream(4, 5, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := sleepscale.CollectSource(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A Poisson(4/s) stream over a 250 s horizon: ≈1000 arrivals, sorted.
	if len(jobs) < 800 || len(jobs) > 1200 {
		t.Errorf("generated %d jobs, want ≈1000", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("stream not sorted by arrival")
		}
	}
	if _, err := buildStream(-1, 5, 1000, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestBuildDispatcher(t *testing.T) {
	for _, name := range []string{"jsq", "rr", "random"} {
		if _, err := buildDispatcher(name, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := buildDispatcher("nope", 1); err == nil {
		t.Error("unknown dispatcher accepted")
	}
}
