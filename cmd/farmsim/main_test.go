package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1, 2,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 16 {
		t.Errorf("parseSizes = %v", got)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestBuildDispatcher(t *testing.T) {
	for _, name := range []string{"jsq", "rr", "random"} {
		if _, err := buildDispatcher(name, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := buildDispatcher("nope", 1); err == nil {
		t.Error("unknown dispatcher accepted")
	}
}
