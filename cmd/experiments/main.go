// Command experiments regenerates the SleepScale paper's tables and figures
// and prints them as plain-text tables. Select experiments by name or run
// everything; -quick trades resolution for speed.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-out FILE] [all|table5|fig1|fig2|fig3|
//	             fig4|fig5|fig6|fig7|fig8|fig9|fig10|appendix|lesson5|atom]...
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sleepscale/internal/experiments"
)

type tabler interface{ Tables() []experiments.Table }

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quickFlag := flag.Bool("quick", false, "reduced-resolution settings (faster)")
	seed := flag.Int64("seed", 1, "experiment seed")
	out := flag.String("out", "", "also write output to this file")
	dataDir := flag.String("data", "", "write per-experiment CSV and JSON files into this directory")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quickFlag {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = []string{"table5", "fig1", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "appendix", "lesson5",
			"atom", "sensitivity", "mail", "analytic"}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	for _, name := range names {
		start := time.Now()
		r, err := run(cfg, name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for _, t := range r.Tables() {
			fmt.Fprintln(w, t.String())
		}
		fmt.Fprintf(w, "(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		if *dataDir != "" {
			if err := exportData(*dataDir, name, r); err != nil {
				log.Fatalf("%s: export: %v", name, err)
			}
		}
	}
}

// exportData writes JSON always and CSV where a long-format exporter exists.
func exportData(dir, name string, r tabler) error {
	jf, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := experiments.WriteJSON(jf, r); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := experiments.ExportCSV(cf, r); err != nil {
		// Not every result has a CSV layout; JSON suffices.
		os.Remove(cf.Name())
	}
	return nil
}

func run(cfg experiments.Config, name string) (tabler, error) {
	switch strings.ToLower(name) {
	case "table5":
		return experiments.Table5(cfg)
	case "fig1":
		return experiments.Figure1(cfg)
	case "fig2":
		return experiments.Figure2(cfg)
	case "fig3":
		return experiments.Figure3(cfg)
	case "fig4":
		return experiments.Figure4(cfg)
	case "fig5":
		return experiments.Figure5(cfg)
	case "fig6":
		return experiments.Figure6(cfg, experiments.Figure6Options{})
	case "fig7":
		return experiments.Figure7(cfg)
	case "fig8":
		return experiments.Figure8(cfg, nil, nil)
	case "fig9":
		return experiments.Figure9(cfg)
	case "fig10":
		return experiments.Figure10(cfg)
	case "appendix":
		return experiments.AppendixValidation(cfg)
	case "lesson5":
		return sequentialBoth(cfg)
	case "atom":
		return experiments.AtomStudy(cfg)
	case "sensitivity":
		return experiments.WakeSensitivity(cfg)
	case "mail":
		return experiments.MailStudy(cfg)
	case "analytic":
		return experiments.AnalyticStrategyStudy(cfg)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

// sequentialBoth runs the lesson-5 study at low and high utilization.
type sequentialPair struct{ lo, hi *experiments.SequentialResult }

func (p sequentialPair) Tables() []experiments.Table {
	return append(p.lo.Tables(), p.hi.Tables()...)
}

func sequentialBoth(cfg experiments.Config) (tabler, error) {
	lo, err := experiments.SequentialLesson(cfg, 0.1)
	if err != nil {
		return nil, err
	}
	hi, err := experiments.SequentialLesson(cfg, 0.7)
	if err != nil {
		return nil, err
	}
	return sequentialPair{lo: lo, hi: hi}, nil
}
