// Command tracesim drives one power-management strategy through a
// utilization trace (the §6 evaluation loop) and reports response time,
// power and the distribution of selected sleep states. It can load a trace
// from CSV or the columnar format (sniffed by magic), or generate the
// synthetic file-server / email-store days.
//
// Usage:
//
//	tracesim -strategy SS -predictor LC -T 5 -alpha 0.35 \
//	         -trace email-store -workload DNS -rhob 0.8
//	tracesim -trace email-store -days 7 -convert week.col   # trace → columnar
//	tracesim -trace week.col -convert week.csv              # columnar → CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"sleepscale"
	"sleepscale/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesim: ")
	var (
		strategyName  = flag.String("strategy", "SS", "SS, SS(C3), DVFS, R2H(C3) or R2H(C6)")
		predictorName = flag.String("predictor", "LC", "LC, LMS, NP, MA or Offline")
		epochMinutes  = flag.Int("T", 5, "policy update interval in minutes")
		alpha         = flag.Float64("alpha", 0.35, "over-provisioning factor α")
		traceName     = flag.String("trace", "email-store", "email-store, file-server or a CSV path")
		workloadName  = flag.String("workload", "DNS", "DNS, Mail or Google")
		rhoB          = flag.Float64("rhob", 0.8, "baseline peak design utilization")
		days          = flag.Int("days", 1, "trace days to generate")
		winStart      = flag.Int("window-start", 120, "daily window start minute (2 AM)")
		winEnd        = flag.Int("window-end", 1200, "daily window end minute (8 PM)")
		evalJobs      = flag.Int("evaljobs", 1500, "bootstrap jobs per policy selection")
		seed          = flag.Int64("seed", 1, "seed")
		verbose       = flag.Bool("v", false, "print per-epoch decisions")
		streaming     = flag.Bool("stream", false, "pull jobs from an explicit streaming source (bounded job-buffer memory; bit-identical to the default path)")
		burst         = flag.String("burst", "none", "overlay a bursty arrival source on the trace stream: none, mmpp or flash (implies -stream)")
		convert       = flag.String("convert", "", "write the loaded trace to this path (.csv → CSV, else columnar) and exit")
	)
	flag.Parse()

	spec, err := specByName(*workloadName)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := loadTrace(*traceName, *days, *seed, *winStart, *winEnd)
	if err != nil {
		log.Fatal(err)
	}
	if *convert != "" {
		if err := convertTrace(tr, *convert); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d slots (%gs each) to %s\n", tr.Len(), tr.SlotSeconds, *convert)
		return
	}
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	qos, err := sleepscale.NewMeanResponseQoS(*rhoB, spec.MaxServiceRate())
	if err != nil {
		log.Fatal(err)
	}
	strat, err := buildStrategy(*strategyName, spec, qos, *evalJobs, *alpha)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := buildPredictor(*predictorName, tr, *winEnd-*winStart)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sleepscale.RunnerConfig{
		Stats:        stats,
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   *epochMinutes,
		Predictor:    pred,
		Strategy:     strat,
		Seed:         *seed,
	}
	var rep sleepscale.RunReport
	if *streaming || *burst != "none" {
		src, err := buildSource(stats, tr, *burst, *seed)
		if err != nil {
			log.Fatal(err)
		}
		rep, err = sleepscale.RunSource(cfg, src)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rep, err = sleepscale.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("strategy=%s predictor=%s T=%dmin α=%.2f workload=%s trace=%s (%d slots)\n",
		rep.Strategy, rep.Predictor, *epochMinutes, *alpha, spec.Name, *traceName, tr.Len())
	fmt.Printf("jobs           %d\n", rep.Jobs)
	fmt.Printf("mean response  %.4f s (budget %.4f s, within=%t)\n",
		rep.MeanResponse, qos.Budget, rep.MeanResponse <= qos.Budget)
	fmt.Printf("p95 response   %.4f s\n", rep.P95Response)
	fmt.Printf("avg power      %.2f W\n", rep.AvgPower)
	fmt.Printf("energy         %.1f kJ over %.1f h\n", rep.Energy/1e3, rep.Duration/3600)
	fmt.Printf("mean frequency %.3f\n", rep.MeanFrequency)
	fmt.Println("state usage (fraction of epochs):")
	fr := rep.PlanFractions()
	names := make([]string, 0, len(fr))
	for n := range fr {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-12s %.3f\n", n, fr[n])
	}
	if *verbose {
		fmt.Println("epoch\tpredicted\trealized\tpolicy\tjobs\tmean_delay_s")
		for _, e := range rep.Epochs {
			fmt.Printf("%d\t%.3f\t%.3f\t%v\t%d\t%.4f\n",
				e.Index, e.Predicted, e.Realized, e.Policy, e.Jobs, e.MeanDelay)
		}
	}
}

// buildSource assembles the streaming job source: the trace-driven
// generator (seeded like the default path, so -stream alone reproduces it
// bit for bit), optionally merged with a bursty overlay.
func buildSource(stats sleepscale.Stats, tr *sleepscale.Trace, burst string, seed int64) (sleepscale.StreamSource, error) {
	src, err := sleepscale.NewTraceSource(stats, tr, seed)
	if err != nil {
		return nil, err
	}
	switch burst {
	case "none":
		return src, nil
	case "mmpp":
		// On/off bursts at twice the workload's native rate, ~5 min on,
		// ~20 min off.
		overlay, err := sleepscale.NewMMPPSource(sleepscale.MMPPConfig{
			OnRate:  2 / stats.Inter.Mean(),
			OffRate: 0,
			MeanOn:  300,
			MeanOff: 1200,
			Size:    stats.Size,
			Horizon: tr.Duration(),
		}, seed+1)
		if err != nil {
			return nil, err
		}
		return sleepscale.MergeSources(src, overlay), nil
	case "flash":
		// Flash crowds: ~hourly onsets spiking to 9× a light base rate,
		// decaying over ~2 minutes.
		overlay, err := sleepscale.NewFlashCrowdSource(sleepscale.FlashCrowdConfig{
			BaseRate:   0.2 / stats.Inter.Mean(),
			SpikeEvery: 3600,
			Peak:       8,
			Decay:      120,
			Size:       stats.Size,
			Horizon:    tr.Duration(),
		}, seed+1)
		if err != nil {
			return nil, err
		}
		return sleepscale.MergeSources(src, overlay), nil
	}
	return nil, fmt.Errorf("unknown burst overlay %q", burst)
}

func specByName(name string) (sleepscale.Spec, error) {
	switch strings.ToLower(name) {
	case "dns":
		return sleepscale.DNS(), nil
	case "mail":
		return sleepscale.Mail(), nil
	case "google":
		return sleepscale.Google(), nil
	}
	return sleepscale.Spec{}, fmt.Errorf("unknown workload %q", name)
}

func loadTrace(name string, days int, seed int64, winStart, winEnd int) (*sleepscale.Trace, error) {
	var full *sleepscale.Trace
	switch name {
	case "email-store":
		full = sleepscale.EmailStoreTrace(days, seed)
	case "file-server":
		full = sleepscale.FileServerTrace(days, seed)
	default:
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if isColFile(f) {
			return trace.ReadCol(name)
		}
		return trace.ReadCSV(f)
	}
	return full.DailyWindow(winStart, winEnd)
}

// isColFile sniffs the columnar magic ("SSCL") so -trace takes either
// format without a flag. The reader is rewound after the peek.
func isColFile(f *os.File) bool {
	var head [4]byte
	n, _ := f.ReadAt(head[:], 0)
	return n == 4 && string(head[:]) == "SSCL"
}

// convertTrace writes tr in the format the destination extension names:
// .csv gets the text format, anything else the columnar binary.
func convertTrace(tr *sleepscale.Trace, path string) error {
	if strings.HasSuffix(path, ".csv") {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return tr.WriteCol(path)
}

func buildStrategy(name string, spec sleepscale.Spec, qos sleepscale.QoS,
	evalJobs int, alpha float64) (sleepscale.Strategy, error) {
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	mgr.Space.FreqStep = 0.02
	switch name {
	case "SS":
		return sleepscale.NewSleepScaleStrategy(mgr, evalJobs, alpha)
	case "SS(C3)":
		return sleepscale.NewFixedSleepStrategy(mgr, sleepscale.Sleep, evalJobs, alpha)
	case "DVFS":
		return sleepscale.NewDVFSOnlyStrategy(mgr, evalJobs, alpha)
	case "R2H(C3)":
		return sleepscale.NewRaceToHaltStrategy(sleepscale.Sleep)
	case "R2H(C6)":
		return sleepscale.NewRaceToHaltStrategy(sleepscale.DeepSleep)
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

func buildPredictor(name string, tr *sleepscale.Trace, daySlots int) (sleepscale.Predictor, error) {
	switch name {
	case "NP":
		return sleepscale.NewNaivePredictor(), nil
	case "LMS":
		return sleepscale.NewLMSPredictor(10, 0.5)
	case "LC":
		return sleepscale.NewLMSCUSUMPredictor(10, 0.5)
	case "LC+seasonal":
		base, err := sleepscale.NewLMSCUSUMPredictor(10, 0.5)
		if err != nil {
			return nil, err
		}
		if daySlots < 1 {
			daySlots = tr.Len()
		}
		return sleepscale.NewSeasonalPredictor(base, daySlots)
	case "Offline":
		return sleepscale.NewOfflinePredictor(tr.Utilization), nil
	}
	return nil, fmt.Errorf("unknown predictor %q", name)
}
