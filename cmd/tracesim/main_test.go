package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"sleepscale"
)

// TestLoadTraceSniffsFormat pins loadTrace on files: the same trace written
// as CSV and as a column file loads identically, format detected by magic.
func TestLoadTraceSniffsFormat(t *testing.T) {
	tr := sleepscale.EmailStoreTrace(1, 3)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	colPath := filepath.Join(dir, "t.col")
	if err := convertTrace(tr, csvPath); err != nil {
		t.Fatal(err)
	}
	if err := convertTrace(tr, colPath); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := loadTrace(csvPath, 1, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fromCol, err := loadTrace(colPath, 1, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromCol.Len() != tr.Len() || fromCSV.Len() != tr.Len() {
		t.Fatalf("lengths: csv %d, col %d, want %d", fromCSV.Len(), fromCol.Len(), tr.Len())
	}
	for i := range tr.Utilization {
		if math.Float64bits(fromCol.Utilization[i]) != math.Float64bits(fromCSV.Utilization[i]) {
			t.Fatalf("slot %d: col %v != csv %v", i, fromCol.Utilization[i], fromCSV.Utilization[i])
		}
	}
	// Columnar carries exact bits and metadata CSV cannot.
	if fromCol.SlotSeconds != tr.SlotSeconds {
		t.Fatalf("col slot seconds %g, want %g", fromCol.SlotSeconds, tr.SlotSeconds)
	}
	for i := range tr.Utilization {
		if math.Float64bits(fromCol.Utilization[i]) != math.Float64bits(tr.Utilization[i]) {
			t.Fatalf("slot %d not bit-exact through columnar", i)
		}
	}
}

func TestIsColFile(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csvPath, []byte("slot,utilization\n0,0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if isColFile(f) {
		t.Fatal("CSV sniffed as columnar")
	}
	colPath := filepath.Join(dir, "t.col")
	if err := sleepscale.EmailStoreTrace(1, 1).WriteCol(colPath); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !isColFile(g) {
		t.Fatal("column file not sniffed")
	}
}

func TestLoadTraceSynthetic(t *testing.T) {
	tr, err := loadTrace("file-server", 1, 1, 120, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1080 {
		t.Fatalf("windowed day has %d slots, want 1080", tr.Len())
	}
	if _, err := loadTrace("nope-does-not-exist", 1, 1, 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
