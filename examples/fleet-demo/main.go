// Example fleet-demo: coordinate a 12-server fleet through one synthetic
// email-store day three ways and compare the energy story.
//
// The baseline is the §6 farm loop — one SleepScale decision per epoch
// applied fleet-wide. The coordinated runs route the same epoch cycle
// through the fleet coordinator: first per-server policies with a staggered
// sleep quorum (3 servers always no deeper than C1, deep sleep rotating
// through the rest), then the same plus horizontal scaling, which parks
// surplus servers overnight — drained, deep-slept and removed from routing —
// and unparks them against the morning ramp, each wake-up paying the full
// deep-sleep latency.
//
// An Observer hook verifies the quorum invariant on every single epoch as
// it closes (Shallow ≥ min(Q, Active)) and tallies how far the active set
// breathes, so the demo doubles as a live invariant check.
package main

import (
	"fmt"
	"log"

	"sleepscale"
)

const (
	servers = 12
	quorum  = 3
	// loadScale multiplies the single-server-scale trace source, so the
	// fleet has real work to split: the overnight trough still leaves
	// surplus servers to park, and the morning ramp forces unparks.
	loadScale = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleet-demo: ")

	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	tr := sleepscale.EmailStoreTrace(1, 7)

	qos, err := sleepscale.NewMeanResponseQoS(0.9, spec.MaxServiceRate())
	if err != nil {
		log.Fatal(err)
	}
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)

	newStrategy := func() sleepscale.Strategy {
		st, err := sleepscale.NewSleepScaleStrategy(mgr, 400, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	// A trace source generates one server's worth of load at the trace's
	// utilization; scale it to fleet size so a fully-active fleet runs each
	// server near the trace's ρ — and the overnight trough leaves real
	// surplus for the scaler to park.
	newSource := func() sleepscale.StreamSource {
		src, err := sleepscale.NewTraceSource(stats, tr, 7)
		if err != nil {
			log.Fatal(err)
		}
		if src, err = sleepscale.ScaleRateSource(src, loadScale); err != nil {
			log.Fatal(err)
		}
		return src
	}

	fmt.Printf("fleet of %d servers, email-store day (%d slots, T=6), SleepScale policy\n\n", servers, tr.Len())
	fmt.Printf("%-28s  %10s  %10s  %10s  %8s  %8s\n",
		"run", "E[R] (s)", "E[P] (W)", "energy(MJ)", "EP", "jobs/kJ")

	// Baseline: the shared §6 loop — every server runs the one decided
	// policy, nobody parks, nothing rotates.
	base, err := sleepscale.RunFarmEpochs(sleepscale.RunnerConfig{
		Stats:        stats,
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   6,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     newStrategy(),
		Seed:         7,
	}, servers, sleepscale.JSQ{}, newSource())
	if err != nil {
		log.Fatal(err)
	}
	baseEnergy := base.Energy
	fmt.Printf("%-28s  %10.4f  %10.2f  %10.3f  %8s  %8.2f\n",
		"shared policy (baseline)", base.MeanResponse, base.AvgPower, base.Energy/1e6,
		"-", float64(base.Jobs)/base.Energy*1e3)

	coordinate := func(label string, park bool) {
		checked, minActive, maxActive, unparks := 0, servers, 0, 0
		coord, err := sleepscale.NewFleetCoordinator(sleepscale.FleetConfig{
			Servers:      servers,
			FreqExponent: spec.FreqExponent,
			Profile:      sleepscale.Xeon(),
			Trace:        tr,
			EpochSlots:   6,
			Strategy:     newStrategy(),
			PerServer:    true,
			NewPredictor: sleepscale.NewNaivePredictor,
			Seed:         7,
			Dispatcher:   sleepscale.JSQ{},
			Quorum:       quorum,
			Park:         park,
			// Aim each active server at ρ = 0.5: the headroom absorbs the
			// ramp while reactive sizing catches up epoch by epoch.
			ParkTargetRho: 0.5,
			Observer: func(fe sleepscale.FleetEpoch) {
				// The quorum invariant, checked as each epoch closes.
				want := quorum
				if fe.Active < want {
					want = fe.Active
				}
				if fe.Shallow < want {
					log.Fatalf("%s: epoch %d breaks quorum: %d shallow of %d active, want ≥ %d",
						label, fe.Index, fe.Shallow, fe.Active, want)
				}
				checked++
				if fe.Active < minActive {
					minActive = fe.Active
				}
				if fe.Active > maxActive {
					maxActive = fe.Active
				}
				unparks += fe.Unparked
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := coord.Run(newSource())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s  %10.4f  %10.2f  %10.3f  %8.4f  %8.2f\n",
			label, rep.MeanResponse, rep.AvgPower, rep.Energy/1e6,
			rep.EnergyProportionality, rep.JobsPerJoule*1e3)
		fmt.Printf("    quorum held on all %d epochs; active %d–%d servers, %d parked at peak, %d unparks (saved %.1f%% energy vs baseline)\n",
			checked, minActive, maxActive, servers-minActive, unparks,
			(1-rep.Energy/baseEnergy)*100)
	}

	coordinate("per-server + quorum", false)
	coordinate("per-server + quorum + park", true)
}
