// Example live-replay: SleepScale as a daemon surviving a mid-week crash.
// A full 7-day job stream (hundreds of thousands of jobs) is recorded to a
// columnar file, encoded onto the serving wire protocol, and piped into a
// live server that checkpoints its state periodically. Sixty percent of the
// way through the week the power fails: the feed dies mid-event, and — to
// make recovery earn its keep — the primary checkpoint file is scribbled
// over, simulating a torn write. The restored daemon falls back to the
// rotated previous snapshot, cuts the epoch log back to that snapshot's
// row high-water mark, replays the week's stream from the top (skipping
// everything the checkpoint already accounts for), and finishes the run.
// The stitched epoch log — rows from before the crash plus rows from after
// the restore — must be bit-identical, row for row, to an uninterrupted
// batch evaluation of the same week, and so must the final report.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"sleepscale"
)

const (
	slotSeconds = 60.0
	epochSlots  = 15 // minute slots per policy epoch
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("live-replay: ")

	dir, err := os.MkdirTemp("", "live-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	tr := sleepscale.FileServerTrace(7, 1) // 7 days, 10080 minute slots

	// Record the week's job stream once; every run below replays this file.
	jobsPath := filepath.Join(dir, "week-jobs.col")
	n, err := sleepscale.RecordJobsCol(traceSource(stats, tr), jobsPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded week: %d jobs, %d slots → %s\n", n, tr.Len(), filepath.Base(jobsPath))

	// Uninterrupted batch reference over the recorded stream.
	refLog := filepath.Join(dir, "ref-epochs.col")
	start := time.Now()
	ref, err := sleepscale.RunSource(batchConfig(spec, tr), colJobs(jobsPath))
	if err != nil {
		log.Fatal(err)
	}
	if err := sleepscale.WriteEpochLog(refLog, ref.Epochs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch reference:  %d epochs, %.1f W, %.4f s mean response  (%v)\n",
		len(ref.Epochs), ref.AvgPower, ref.MeanResponse, time.Since(start).Round(time.Millisecond))

	// Encode the recorded stream onto the wire: the columnar job file plus
	// the trace's slot telemetry become one interleaved event stream, the
	// bytes a load generator would push at the daemon.
	wirePath := filepath.Join(dir, "week.ssw")
	wf, err := os.Create(wirePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := sleepscale.FeedWire(sleepscale.NewWireWriter(wf), colJobs(jobsPath),
		sleepscale.SliceSlots(tr.Utilization), slotSeconds); err != nil {
		log.Fatal(err)
	}
	if err := wf.Close(); err != nil {
		log.Fatal(err)
	}
	wire, err := os.ReadFile(wirePath)
	if err != nil {
		log.Fatal(err)
	}

	// Live serving, attempt one: the daemon consumes the piped stream and
	// checkpoints every 32 epochs — until the feed dies 60% in, mid-event.
	ckpt := filepath.Join(dir, "sleepscaled.ckpt")
	liveLog := filepath.Join(dir, "live-epochs.col")
	cfg := sleepscale.ServeConfig{
		Runner:          liveConfig(spec),
		CheckpointPath:  ckpt,
		CheckpointEvery: 32,
		EpochLogPath:    liveLog,
	}
	victim, err := sleepscale.NewServeServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pr, pw := io.Pipe()
	served := make(chan error, 1)
	go func() {
		_, _, err := victim.Serve(pr)
		served <- err
	}()
	cut := len(wire) * 3 / 5
	if _, err := pw.Write(wire[:cut]); err != nil {
		log.Fatal(err)
	}
	pw.CloseWithError(fmt.Errorf("simulated power loss"))
	if err := <-served; err == nil {
		log.Fatal("the daemon survived a severed feed — it should not have")
	}
	fmt.Printf("crash at byte %d/%d: epoch %d of %d served, state on disk\n",
		cut, len(wire), victim.Runner().Epoch(), len(ref.Epochs))

	// Make it a real crash: tear the primary checkpoint, as a write cut off
	// by the same power loss would. Recovery must fall back to the rotated
	// previous snapshot.
	if err := os.WriteFile(ckpt, []byte("torn checkpoint write"), 0o644); err != nil {
		log.Fatal(err)
	}

	// Restore and replay the stream from the top: events the surviving
	// snapshot already accounts for are skipped, everything after lands
	// exactly once.
	start = time.Now()
	restored, err := sleepscale.RestoreServeServer(cfg, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored from previous snapshot at epoch %d\n", restored.Runner().Epoch())
	rep, done, err := restored.Serve(bytes.NewReader(wire))
	if err != nil {
		log.Fatal(err)
	}
	if !done {
		log.Fatal("replayed stream did not run to completion")
	}
	fmt.Printf("replay finished:  %d jobs, %.1f W, %.4f s mean response  (%v)\n",
		rep.Jobs, rep.AvgPower, rep.MeanResponse, time.Since(start).Round(time.Millisecond))

	// The verdict: the stitched epoch log must match the uninterrupted
	// batch run bit for bit, and so must the aggregates.
	if rep.Jobs != ref.Jobs || rep.Energy != ref.Energy || rep.AvgPower != ref.AvgPower ||
		rep.MeanResponse != ref.MeanResponse || rep.Duration != ref.Duration {
		log.Fatal("restored aggregates diverged from the batch reference")
	}
	rows := mustEqualLogs(liveLog, refLog)
	fmt.Printf("stitched == batch: %d epoch-log rows bit-identical across the crash\n", rows)
}

// liveConfig is the daemon's runner: LMS prediction, analytic SleepScale
// policy selection — the same pieces the batch reference runs.
func liveConfig(spec sleepscale.Spec) sleepscale.LiveConfig {
	pred, strat := pieces(spec)
	return sleepscale.LiveConfig{
		SlotSeconds:  slotSeconds,
		EpochSlots:   epochSlots,
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Predictor:    pred,
		Strategy:     strat,
		Seed:         1,
	}
}

func batchConfig(spec sleepscale.Spec, tr *sleepscale.Trace) sleepscale.RunnerConfig {
	pred, strat := pieces(spec)
	return sleepscale.RunnerConfig{
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   epochSlots,
		Predictor:    pred,
		Strategy:     strat,
		Seed:         1,
	}
}

// pieces builds a fresh predictor (stateful — one per run) and the shared
// stateless strategy.
func pieces(spec sleepscale.Spec) (sleepscale.Predictor, sleepscale.Strategy) {
	pred, err := sleepscale.NewLMSPredictor(10, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	qos, err := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	if err != nil {
		log.Fatal(err)
	}
	m := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	strat, err := sleepscale.NewAnalyticSleepScaleStrategy(m, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	return pred, strat
}

// traceSource streams the week's jobs from the utilization trace.
func traceSource(stats sleepscale.Stats, tr *sleepscale.Trace) sleepscale.StreamSource {
	src, err := sleepscale.NewTraceSource(stats, tr, 1)
	if err != nil {
		log.Fatal(err)
	}
	return src
}

// colJobs replays the recorded job stream from the memory-mapped file.
func colJobs(path string) sleepscale.StreamSource {
	r, err := sleepscale.OpenCol(path)
	if err != nil {
		log.Fatal(err)
	}
	src, err := sleepscale.NewColJobsSource(r)
	if err != nil {
		log.Fatal(err)
	}
	return src
}

// mustEqualLogs compares two epoch logs row for row (and their plan
// dictionaries) and returns the row count.
func mustEqualLogs(gotPath, wantPath string) int {
	got, gotDict := readLog(gotPath)
	want, wantDict := readLog(wantPath)
	if len(gotDict) != len(wantDict) {
		log.Fatalf("plan dictionaries diverge: %v vs %v", gotDict, wantDict)
	}
	for i := range gotDict {
		if gotDict[i] != wantDict[i] {
			log.Fatalf("plan dictionaries diverge: %v vs %v", gotDict, wantDict)
		}
	}
	if len(got) != len(want) {
		log.Fatalf("epoch logs differ in length: %d vs %d rows", len(got), len(want))
	}
	for i := range got {
		for c := range got[i] {
			if got[i][c] != want[i][c] {
				log.Fatalf("epoch log row %d col %d: %v != %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	return len(got)
}

func readLog(path string) ([][]float64, []string) {
	r, err := sleepscale.OpenCol(path)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	ncols := len(r.Schema().Cols)
	cols := make([][]float64, ncols)
	for b := 0; b < r.NumBlocks(); b++ {
		for c := 0; c < ncols; c++ {
			v, err := r.Col(b, c, nil)
			if err != nil {
				log.Fatal(err)
			}
			cols[c] = append(cols[c], v...)
		}
	}
	rows := make([][]float64, r.Rows())
	for i := range rows {
		rows[i] = make([]float64, ncols)
		for c := range cols {
			rows[i][c] = cols[c][i]
		}
	}
	return rows, append([]string(nil), r.Schema().Dict...)
}
