// Example chaos-week: run a 10-server fleet through a week of email-store
// load while servers crash and come back, and check that the coordinator's
// degraded-mode story holds together.
//
// The baseline is the fault-free coordinated run (per-server policies,
// sleep quorum, overnight parking). The chaos run replays the exact same
// load with a seeded MTBF/MTTR renewal process layered on top: each crash
// loses the jobs in flight on that server (re-dispatched under a bounded
// retry policy), each repair rejoins the fleet cold through the full wake
// transition, and the quorum/park arithmetic recomputes over whatever is
// healthy. The same seed always produces the same outage timeline, so the
// whole week is replayable event for event.
//
// The demo doubles as a live invariant check: an Observer watches every
// epoch for quorum violations over the healthy set, and the run is only
// reported after the job-conservation ledger balances exactly —
// offered == completed + requeued + dropped.
package main

import (
	"fmt"
	"log"

	"sleepscale"
)

const (
	servers = 10
	quorum  = 2
	days    = 7
	// loadScale multiplies the single-server-scale trace source so the
	// fleet splits real work (see examples/fleet-demo).
	loadScale = 4
	// mtbf/mttr aim for a handful of outages over the week, long enough
	// for the coordinator to re-park around each hole.
	mtbf = 2 * 24 * 3600.0 // mean time between failures per server: 2 days
	mttr = 2 * 3600.0      // mean repair time: 2 hours
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos-week: ")

	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	tr := sleepscale.EmailStoreTrace(days, 7)
	qos, err := sleepscale.NewMeanResponseQoS(0.9, spec.MaxServiceRate())
	if err != nil {
		log.Fatal(err)
	}
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)

	newSource := func() sleepscale.StreamSource {
		src, err := sleepscale.NewTraceSource(stats, tr, 7)
		if err != nil {
			log.Fatal(err)
		}
		if src, err = sleepscale.ScaleRateSource(src, loadScale); err != nil {
			log.Fatal(err)
		}
		return src
	}

	run := func(label string, faults sleepscale.FaultSource) *sleepscale.FleetReport {
		strat, err := sleepscale.NewSleepScaleStrategy(mgr, 400, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		minHealthy := servers
		coord, err := sleepscale.NewFleetCoordinator(sleepscale.FleetConfig{
			Servers:       servers,
			FreqExponent:  spec.FreqExponent,
			Profile:       sleepscale.Xeon(),
			Trace:         tr,
			EpochSlots:    6,
			Strategy:      strat,
			PerServer:     true,
			NewPredictor:  sleepscale.NewNaivePredictor,
			Seed:          7,
			Dispatcher:    sleepscale.JSQ{},
			Quorum:        quorum,
			Park:          true,
			ParkTargetRho: 0.5,
			Faults:        faults,
			Retry:         sleepscale.FaultRetryPolicy{Budget: 3, Backoff: 0.5},
			Observer: func(fe sleepscale.FleetEpoch) {
				// Quorum over the healthy set, degraded when the fleet is.
				want := quorum
				if fe.Active < want {
					want = fe.Active
				}
				if fe.Shallow < want {
					log.Fatalf("%s: epoch %d breaks quorum: %d shallow of %d active (down %d), want ≥ %d",
						label, fe.Index, fe.Shallow, fe.Active, fe.Down, want)
				}
				if healthy := servers - fe.Down; healthy < minHealthy {
					minHealthy = healthy
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := coord.Run(newSource())
		if err != nil {
			log.Fatal(err)
		}
		if faults != nil {
			// The conservation ledger must balance to the job.
			if rep.Offered != rep.Completed+rep.Requeued+rep.Dropped {
				log.Fatalf("%s: conservation broken: %d offered != %d completed + %d requeued + %d dropped",
					label, rep.Offered, rep.Completed, rep.Requeued, rep.Dropped)
			}
		}
		fmt.Printf("%-22s  %10.4f  %10.2f  %10.3f  %8.4f\n",
			label, rep.MeanResponse, rep.AvgPower, rep.Energy/1e6, rep.EnergyProportionality)
		if faults != nil {
			fmt.Printf("    %d crashes, %d repairs; fleet never below %d healthy servers\n",
				rep.Crashes, rep.Repairs, minHealthy)
			fmt.Printf("    ledger: %d offered = %d completed + %d requeued + %d dropped (%d retries)\n",
				rep.Offered, rep.Completed, rep.Requeued, rep.Dropped, rep.Retries)
		}
		return rep
	}

	fmt.Printf("fleet of %d servers, %d-day email-store week (%d slots, T=6)\n", servers, days, tr.Len())
	fmt.Printf("MTBF %.0f h/server, MTTR %.0f h, retry budget 3 with 0.5 s/attempt backoff\n\n", mtbf/3600, mttr/3600)
	fmt.Printf("%-22s  %10s  %10s  %10s  %8s\n", "run", "E[R] (s)", "E[P] (W)", "energy(MJ)", "EP")

	calm := run("calm week", nil)

	faults, err := sleepscale.NewFaultRenewal(sleepscale.FaultRenewalConfig{
		Servers: servers, MTBF: mtbf, MTTR: mttr, Horizon: tr.Duration(),
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	chaos := run("chaos week", faults)

	fmt.Printf("\nsurviving the outages cost %.1f%% extra response time and %.1f%% energy\n",
		(chaos.MeanResponse/calm.MeanResponse-1)*100, (chaos.Energy/calm.Energy-1)*100)
	fmt.Printf("first outages: ")
	for i, ev := range chaos.FaultEvents {
		if i == 6 {
			fmt.Printf("…")
			break
		}
		fmt.Printf("[%.0fh s%d %s] ", ev.Time/3600, ev.Server, ev.Kind)
	}
	fmt.Println()
}
