// Predictor-playground: compare the §5.2.2 utilization predictors on a
// synthetic email-store day — forecast error, surge tracking, and the
// LMS+CUSUM change-point resets.
package main

import (
	"fmt"
	"log"
	"math"

	"sleepscale"
)

func main() {
	log.SetFlags(0)
	tr := sleepscale.EmailStoreTrace(2, 11)
	seq := tr.Utilization

	lms, err := sleepscale.NewLMSPredictor(10, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	lc, err := sleepscale.NewLMSCUSUMPredictor(10, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	preds := []sleepscale.Predictor{
		sleepscale.NewNaivePredictor(),
		lms,
		lc,
		sleepscale.NewOfflinePredictor(seq),
	}

	fmt.Printf("email-store trace: %d minutes over %d days\n\n", len(seq), len(seq)/1440)
	fmt.Printf("%-8s  %12s  %12s\n", "name", "MAE", "max |err|")
	for _, p := range preds {
		mae, worst := evaluate(p, seq)
		fmt.Printf("%-8s  %12.4f  %12.4f\n", p.Name(), mae, worst)
	}

	// Demonstrate surge tracking: a flat signal with one step change.
	fmt.Println("\nstep-change tracking (0.2 → 0.8 at minute 60):")
	step := make([]float64, 120)
	for i := range step {
		if i < 60 {
			step[i] = 0.2
		} else {
			step[i] = 0.8
		}
	}
	lms2, _ := sleepscale.NewLMSPredictor(10, 0.5)
	lc2, _ := sleepscale.NewLMSCUSUMPredictor(10, 0.5)
	fmt.Printf("%-8s  forecasts for minutes 60–66 after the step\n", "name")
	for _, p := range []sleepscale.Predictor{lms2, lc2} {
		var row []string
		for i, x := range step {
			f := p.Predict()
			if i >= 60 && i < 67 {
				row = append(row, fmt.Sprintf("%.2f", f))
			}
			p.Observe(x)
		}
		fmt.Printf("%-8s  %v\n", p.Name(), row)
	}
}

func evaluate(p sleepscale.Predictor, seq []float64) (mae, worst float64) {
	var sum float64
	for _, x := range seq {
		e := math.Abs(p.Predict() - x)
		sum += e
		if e > worst {
			worst = e
		}
		p.Observe(x)
	}
	return sum / float64(len(seq)), worst
}
