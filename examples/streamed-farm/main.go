// Example streamed-farm: dispatch a full 7-day diurnal + flash-crowd
// scenario across a 16-server farm without ever materializing the job
// stream. Jobs are pulled from composed generators (a day/night sinusoid
// merged with spike-and-decay flash crowds) in 256-job chunks and routed by
// JSQ at their arrival instants, so peak job-buffer memory is O(chunk)
// however long the week (the MB figures below are dominated by the
// per-server response samples the results carry, not by the stream).
// The demo runs the week twice — once through the
// sequential streaming dispatch, once through the time-sliced parallel mode
// on the persistent worker pool (workers started once, woken per slice,
// resynchronized by a reusable barrier — no goroutine is spawned per slice)
// — reports the wall-clock speedup, and checks the two runs are
// bit-identical, the pooled parallel mode's determinism contract.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sleepscale"
)

const (
	servers = 16
	day     = 86400.0
	week    = 7 * day
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamed-farm: ")

	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}

	// The farm's operating point: full frequency, deep sleep the moment a
	// queue empties — scale-out leaves servers idle often enough that the
	// sleep states carry the power story.
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), spec.FreqExponent)
	if err != nil {
		log.Fatal(err)
	}

	run := func(parallel bool) (sleepscale.FarmResult, float64, time.Duration) {
		scenario := buildScenario(stats)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := sleepscale.RunFarmSource(servers, cfg, sleepscale.JSQ{}, scenario,
			sleepscale.FarmDispatchOptions{Parallel: parallel})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return res, float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20), elapsed
	}

	seq, seqMB, seqT := run(false)
	fmt.Printf("sequential dispatch %8d jobs  %.4f s mean response  %7.1f W  %6.1f MB  %v\n",
		seq.Jobs, seq.MeanResponse, seq.TotalAvgPower, seqMB, seqT.Round(time.Millisecond))

	par, parMB, parT := run(true)
	fmt.Printf("parallel (pooled)   %8d jobs  %.4f s mean response  %7.1f W  %6.1f MB  %v\n",
		par.Jobs, par.MeanResponse, par.TotalAvgPower, parMB, parT.Round(time.Millisecond))

	if seq.Jobs != par.Jobs || seq.MeanResponse != par.MeanResponse ||
		seq.Energy != par.Energy || seq.TotalAvgPower != par.TotalAvgPower {
		log.Fatal("parallel JSQ diverged from the sequential dispatch")
	}
	fmt.Printf("sequential == parallel: bit-identical merge; %.2fx wall-clock speedup on %d CPUs\n",
		seqT.Seconds()/parT.Seconds(), runtime.GOMAXPROCS(0))

	// Record the composed stream to a columnar job log, then replay the
	// week from the memory-mapped file. Replay skips the generators
	// entirely — arrivals and sizes stream zero-copy from disk — and must
	// reproduce the live dispatch bit for bit.
	dir, err := os.MkdirTemp("", "streamed-farm")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	jobsPath := filepath.Join(dir, "week-jobs.col")
	n, err := sleepscale.RecordJobsCol(buildScenario(stats), jobsPath)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sleepscale.OpenCol(jobsPath)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	replaySrc, err := sleepscale.NewColJobsSource(r)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	replay, err := sleepscale.RunFarmSource(servers, cfg, sleepscale.JSQ{}, replaySrc,
		sleepscale.FarmDispatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	replayT := time.Since(start)
	fmt.Printf("columnar replay     %8d jobs  %.4f s mean response  %7.1f W  %9s  %v\n",
		replay.Jobs, replay.MeanResponse, replay.TotalAvgPower, "(mmap)", replayT.Round(time.Millisecond))
	if replay.Jobs != n || replay.Jobs != seq.Jobs || replay.MeanResponse != seq.MeanResponse ||
		replay.Energy != seq.Energy || replay.TotalAvgPower != seq.TotalAvgPower {
		log.Fatal("columnar replay diverged from the live dispatch")
	}
	fmt.Println("recorded replay == live: bit-identical dispatch from the column file")

	// JSQ breaks backlog ties toward the lowest index, so at off-peak load
	// it packs work onto the first few servers and leaves the rest asleep —
	// the flash crowds are what spill jobs down the fleet. The share
	// gradient below is that packing made visible.
	fmt.Printf("job share by server (JSQ packs low indices, the tail sleeps):\n ")
	for _, share := range par.JobShare {
		fmt.Printf(" %.3f", share)
	}
	fmt.Println()
}

// buildScenario composes the week: a diurnal baseline swinging between
// night and day rates, merged with flash crowds spiking every ~8 hours and
// decaying over ten minutes. Each call returns a fresh source so the two
// dispatch modes replay the identical stream.
func buildScenario(stats sleepscale.Stats) sleepscale.StreamSource {
	diurnal, err := sleepscale.NewDiurnalSource(sleepscale.DiurnalConfig{
		BaseRate: 1.0, // night trough, jobs/s across the whole farm
		PeakRate: 6.0, // midafternoon peak
		Period:   day,
		Phase:    0.6, // peak at ~14:24
		Size:     stats.Size,
		Horizon:  week,
	}, 11)
	if err != nil {
		log.Fatal(err)
	}
	crowd, err := sleepscale.NewFlashCrowdSource(sleepscale.FlashCrowdConfig{
		BaseRate:   0.2,      // quiescent overlay rate
		SpikeEvery: 8 * 3600, // a flash crowd every ~8 h
		Peak:       20,       // ×20 intensity at onset
		Decay:      600,      // ten-minute e-folding
		Size:       stats.Size,
		Horizon:    week,
	}, 12)
	if err != nil {
		log.Fatal(err)
	}
	return sleepscale.MergeSources(diurnal, crowd)
}
