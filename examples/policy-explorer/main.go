// Policy-explorer: exhaustively characterize the (frequency, sleep state)
// space for a custom workload and print the Pareto frontier of response time
// versus power — the raw material behind the paper's Figure 1 bowls.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"sleepscale"
)

func main() {
	log.SetFlags(0)
	var (
		serviceMean = flag.Float64("service-mean", 0.05, "mean job size in seconds at f=1")
		serviceCV   = flag.Float64("service-cv", 1.5, "service-time coefficient of variation")
		arrivalCV   = flag.Float64("arrival-cv", 2.0, "inter-arrival coefficient of variation")
		rho         = flag.Float64("rho", 0.25, "utilization")
		jobs        = flag.Int("jobs", 20000, "evaluation stream length")
		seed        = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	spec := sleepscale.Spec{
		Name:             "custom",
		InterArrivalMean: *serviceMean / *rho,
		InterArrivalCV:   *arrivalCV,
		ServiceMean:      *serviceMean,
		ServiceCV:        *serviceCV,
		FreqExponent:     1,
	}
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	stream := stats.Jobs(*jobs, rand.New(rand.NewSource(*seed)))
	prof := sleepscale.Xeon()
	mu := spec.MaxServiceRate()

	type entry struct {
		pol  sleepscale.Policy
		resp float64 // µE[R]
		pow  float64
	}
	var all []entry
	space := sleepscale.DefaultSpace()
	space.FreqStep = 0.02
	for _, plan := range space.Plans {
		for _, f := range space.Frequencies(*rho, spec.FreqExponent) {
			pol := sleepscale.Policy{Frequency: f, Plan: plan}
			cfg, err := pol.Config(prof, spec.FreqExponent)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sleepscale.Simulate(stream, cfg, sleepscale.SimOptions{})
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, entry{pol, mu * res.MeanResponse, res.AvgPower})
		}
	}

	// Pareto frontier: no other policy is both faster and cheaper.
	sort.Slice(all, func(i, j int) bool { return all[i].resp < all[j].resp })
	var frontier []entry
	bestPower := 1e18
	for _, e := range all {
		if e.pow < bestPower {
			frontier = append(frontier, e)
			bestPower = e.pow
		}
	}

	fmt.Printf("custom workload: service %.3gs (Cv %.2g), arrivals Cv %.2g, ρ=%.2f\n",
		*serviceMean, *serviceCV, *arrivalCV, *rho)
	fmt.Printf("%d policies evaluated, %d on the Pareto frontier:\n\n",
		len(all), len(frontier))
	fmt.Printf("%-22s  %10s  %9s\n", "policy", "µE[R]", "E[P] (W)")
	for _, e := range frontier {
		fmt.Printf("%-22v  %10.2f  %9.1f\n", e.pol, e.resp, e.pow)
	}
}
