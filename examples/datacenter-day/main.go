// Datacenter-day: replay a synthetic email-store working day (2 AM–8 PM)
// against a DNS-like service and compare SleepScale with the conventional
// strategies the paper evaluates in Figure 9.
package main

import (
	"fmt"
	"log"

	"sleepscale"
)

func main() {
	log.SetFlags(0)
	spec := sleepscale.DNS()
	mu := spec.MaxServiceRate()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	full := sleepscale.EmailStoreTrace(1, 7)
	tr, err := full.DailyWindow(120, 1200) // 2 AM – 8 PM
	if err != nil {
		log.Fatal(err)
	}
	qos, err := sleepscale.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		log.Fatal(err)
	}

	mean, min, max := tr.Stats()
	fmt.Printf("email-store day: %d minutes, utilization mean %.2f (range %.2f–%.2f)\n",
		tr.Len(), mean, min, max)
	fmt.Printf("QoS: mean response ≤ %.3f s (ρ_b = 0.8)\n\n", qos.Budget)
	fmt.Printf("%-9s  %10s  %9s  %9s  %7s\n",
		"strategy", "E[R] (s)", "P95 (s)", "E[P] (W)", "in QoS")

	for _, name := range []string{"SS", "SS(C3)", "DVFS", "R2H(C3)", "R2H(C6)"} {
		strat, err := buildStrategy(name, spec, qos)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := sleepscale.NewLMSCUSUMPredictor(10, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sleepscale.Run(sleepscale.RunnerConfig{
			Stats:        stats,
			FreqExponent: spec.FreqExponent,
			Profile:      sleepscale.Xeon(),
			Trace:        tr,
			EpochSlots:   5,
			Predictor:    pred,
			Strategy:     strat,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %10.4f  %9.4f  %9.2f  %7t\n",
			name, rep.MeanResponse, rep.P95Response, rep.AvgPower,
			rep.MeanResponse <= qos.Budget)
	}
}

func buildStrategy(name string, spec sleepscale.Spec, qos sleepscale.QoS) (sleepscale.Strategy, error) {
	const (
		evalJobs = 1200
		alpha    = 0.35
	)
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	mgr.Space.FreqStep = 0.02
	switch name {
	case "SS":
		return sleepscale.NewSleepScaleStrategy(mgr, evalJobs, alpha)
	case "SS(C3)":
		return sleepscale.NewFixedSleepStrategy(mgr, sleepscale.Sleep, evalJobs, alpha)
	case "DVFS":
		return sleepscale.NewDVFSOnlyStrategy(mgr, evalJobs, alpha)
	case "R2H(C3)":
		return sleepscale.NewRaceToHaltStrategy(sleepscale.Sleep)
	case "R2H(C6)":
		return sleepscale.NewRaceToHaltStrategy(sleepscale.DeepSleep)
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}
