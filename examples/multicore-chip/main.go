// Multicore-chip: the paper's §7 future-work direction — SleepScale-style
// states on a k-core chip with a shared platform. Shows how one busy core
// pins the platform awake, why per-core C6 still pays, and how a guarded
// (break-even) timeout tames the deep-sleep wake penalty.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sleepscale"
)

func main() {
	log.SetFlags(0)
	const (
		mu     = 5.0 // jobs/second per core at f=1
		lambda = 3.5 // aggregate arrivals/second
		nJobs  = 60000
	)
	rng := rand.New(rand.NewSource(1))
	jobs := make([]sleepscale.Job, nJobs)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / lambda
		jobs[i] = sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / mu}
	}

	chip := func(cores int, coreSleep []sleepscale.MultiCorePhase) sleepscale.MultiCoreConfig {
		return sleepscale.MultiCoreConfig{
			Cores:               cores,
			Frequency:           1,
			FreqExponent:        1,
			CPUActivePower:      130.0 / 4, // a quarter of the socket's 130 W
			CoreSleep:           coreSleep,
			PlatformActivePower: 120,
			PlatformIdlePower:   60.5,
			PlatformSleepPower:  13.1,
			PlatformSleepAfter:  2,
			PlatformWakeLatency: 1,
		}
	}
	c6 := []sleepscale.MultiCorePhase{
		{Name: "C6", Power: 15.0 / 4, WakeLatency: 1e-3, EnterAfter: 0},
	}
	noSleep := []sleepscale.MultiCorePhase(nil)

	fmt.Printf("aggregate load λ=%.1f/s, per-core µ=%.1f/s, %d jobs\n\n", lambda, mu, nJobs)
	fmt.Printf("%-28s  %8s  %10s  %12s\n", "configuration", "cores", "E[R] (s)", "E[P] (W)")
	for _, tc := range []struct {
		name  string
		cores int
		sleep []sleepscale.MultiCorePhase
	}{
		{"1 core, no core sleep", 1, noSleep},
		{"1 core, per-core C6", 1, c6},
		{"4 cores, no core sleep", 4, noSleep},
		{"4 cores, per-core C6", 4, c6},
	} {
		res, err := sleepscale.SimulateMultiCore(jobs, chip(tc.cores, tc.sleep))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s  %8d  %10.4f  %12.2f\n", tc.name, tc.cores, res.MeanResponse, res.AvgPower)
	}

	// Validate the queueing core against the M/M/k closed form.
	want, err := sleepscale.MMkMeanResponse(4, lambda, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nM/M/4 closed form E[R] = %.4f s (simulated above should be close)\n", want)

	// Guarded deep sleep on a single-core server with bursty arrivals.
	fmt.Println("\nguarded C6S3 timeout on bursty arrivals (single server, ρ=0.1):")
	prof := sleepscale.Xeon()
	f := 0.5
	tau, err := sleepscale.BreakEvenDelay(prof, f, sleepscale.OperatingIdle, sleepscale.DeeperSleep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("break-even idle time at f=%.1f: %.2f s\n", f, tau)

	spec := sleepscale.Spec{
		Name:             "bursty",
		InterArrivalMean: 0.194 / 0.1,
		InterArrivalCV:   4,
		ServiceMean:      0.194,
		ServiceCV:        1,
		FreqExponent:     1,
	}
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	bjobs := stats.Jobs(40000, rand.New(rand.NewSource(2)))
	guarded, err := sleepscale.GuardedPlan(prof, f, sleepscale.OperatingIdle, sleepscale.DeeperSleep)
	if err != nil {
		log.Fatal(err)
	}
	plans := []sleepscale.SleepPlan{
		sleepscale.SingleState(sleepscale.OperatingIdle),
		sleepscale.SingleState(sleepscale.DeeperSleep),
		guarded,
	}
	best := math.Inf(1)
	for _, plan := range plans {
		pol := sleepscale.Policy{Frequency: f, Plan: plan}
		cfg, err := pol.Config(prof, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sleepscale.Simulate(bjobs, cfg, sleepscale.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s  E[P]=%7.2f W   E[R]=%.3f s\n", plan.Name, res.AvgPower, res.MeanResponse)
		if res.AvgPower < best {
			best = res.AvgPower
		}
	}
}
