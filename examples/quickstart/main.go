// Quickstart: select the minimum-power (frequency, sleep state) policy for
// a DNS-like server at 30% utilization under the paper's ρ_b = 0.8 QoS, and
// show how the choice shifts as the constraint tightens.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sleepscale"
)

func main() {
	log.SetFlags(0)
	prof := sleepscale.Xeon()
	spec := sleepscale.DNS()
	mu := spec.MaxServiceRate()

	// The workload: Poisson arrivals, exponential service, ρ = 0.3.
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		log.Fatal(err)
	}
	jobs := stats.Jobs(10000, rand.New(rand.NewSource(1)))

	fmt.Println("DNS-like server at ρ = 0.3 on a Xeon profile")
	fmt.Println()
	fmt.Printf("%-28s  %-18s  %8s  %10s\n", "QoS constraint", "best policy", "E[P] (W)", "µE[R]")
	for _, rhoB := range []float64{0.5, 0.6, 0.8, 0.9} {
		qos, err := sleepscale.NewMeanResponseQoS(rhoB, mu)
		if err != nil {
			log.Fatal(err)
		}
		mgr := sleepscale.NewManager(prof, spec, qos)
		best, _, err := mgr.Select(jobs, 0.3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ρ_b=%.1f (µE[R] ≤ %5.2f)       %-18v  %8.1f  %10.2f\n",
			rhoB, 1/(1-rhoB), best.Policy, best.Metrics.AvgPower,
			mu*best.Metrics.MeanResponse)
	}

	fmt.Println()
	fmt.Println("Compare with the always-fast baselines at the same load:")
	for _, st := range []sleepscale.State{sleepscale.Sleep, sleepscale.DeepSleep} {
		pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(st)}
		cfg, err := pol.Config(prof, spec.FreqExponent)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sleepscale.Simulate(jobs, cfg, sleepscale.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("race-to-halt %-10v        %8.1f W   µE[R]=%.2f\n",
			st, res.AvgPower, mu*res.MeanResponse)
	}
}
