// Example week-long: run a full 7-day (10080-slot) utilization trace
// through the streaming evaluation loop. The job stream — a few hundred
// thousand jobs — is never materialized: jobs are pulled from the
// incremental trace generator in 256-job chunks, so peak job-buffer memory
// is independent of trace length. The demo then replays the same week
// through the materialized path (stream.Slice over the full TraceJobs
// slice) and through a memory-mapped columnar trace file — all three
// bit-identical — and finishes with a composed scenario: the trace
// baseline spliced into a flash-crowd afternoon.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"sleepscale"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("week-long: ")

	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	tr := sleepscale.FileServerTrace(7, 1) // 7 days, 10080 minute slots
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg := sleepscale.RunnerConfig{
		Stats:        stats,
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   15,
		Predictor:    sleepscale.NewNaivePredictor(),
		Strategy:     sleepscale.NewStaticStrategy(pol, "R2H(C6)"),
		Seed:         1,
	}

	// 1. Streamed: the default Run pulls jobs chunk by chunk.
	streamedAlloc, streamed := measure(func() sleepscale.RunReport {
		rep, err := sleepscale.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	})
	fmt.Printf("streamed week     %d jobs, %.4f s mean response, %.1f W, %.1f MB allocated\n",
		streamed.Jobs, streamed.MeanResponse, streamed.AvgPower, streamedAlloc)

	// 2. Materialized: the whole week's job stream up front, through the
	// slice adapter. Same epoch accounting, same numbers, more memory.
	materializedAlloc, materialized := measure(func() sleepscale.RunReport {
		src, err := sleepscale.NewTraceSource(stats, tr, cfg.Seed)
		if err != nil {
			log.Fatal(err)
		}
		jobs, err := sleepscale.CollectSource(src, 0)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sleepscale.RunSource(cfg, sleepscale.SliceSource(jobs))
		if err != nil {
			log.Fatal(err)
		}
		return rep
	})
	fmt.Printf("materialized week %d jobs, %.4f s mean response, %.1f W, %.1f MB allocated\n",
		materialized.Jobs, materialized.MeanResponse, materialized.AvgPower, materializedAlloc)
	if streamed.Jobs != materialized.Jobs || streamed.Energy != materialized.Energy ||
		streamed.MeanResponse != materialized.MeanResponse {
		log.Fatal("streamed and materialized runs diverged")
	}
	fmt.Println("streamed == materialized: bit-identical epoch metrics")

	// 3. Columnar replay: the same week from a memory-mapped column file.
	// The trace is served zero-copy out of the page cache — no per-slot
	// parsing, no trace materialization — and, sharing the seeded
	// generator, reproduces the streamed run bit for bit.
	colDir, err := os.MkdirTemp("", "week-long")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(colDir)
	colPath := filepath.Join(colDir, "week.col")
	if err := sleepscale.WriteColTrace(tr, colPath); err != nil {
		log.Fatal(err)
	}
	colAlloc, columnar := measure(func() sleepscale.RunReport {
		r, err := sleepscale.OpenCol(colPath)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		src, err := sleepscale.NewColTraceSource(r, stats, cfg.Seed)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sleepscale.RunSource(cfg, src)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	})
	fmt.Printf("columnar week     %d jobs, %.4f s mean response, %.1f W, %.1f MB allocated\n",
		columnar.Jobs, columnar.MeanResponse, columnar.AvgPower, colAlloc)
	if columnar.Jobs != streamed.Jobs || columnar.Energy != streamed.Energy ||
		columnar.MeanResponse != streamed.MeanResponse {
		log.Fatal("columnar replay diverged from the streamed run")
	}
	fmt.Println("columnar == streamed: bit-identical epoch metrics")

	// 4. Scenario composition: the same trace baseline until mid-week, then
	// a flash-crowd regime — arrival shapes a fixed trace cannot express.
	base, err := sleepscale.NewTraceSource(stats, tr, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	crowd, err := sleepscale.NewFlashCrowdSource(sleepscale.FlashCrowdConfig{
		BaseRate:   0.3 / stats.Inter.Mean(),
		SpikeEvery: 3 * 3600,
		Peak:       10,
		Decay:      300,
		Size:       stats.Size,
		Horizon:    tr.Duration() / 2,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	spliced, err := sleepscale.SpliceSources(base, tr.Duration()/2, crowd)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := sleepscale.RunSource(cfg, spliced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flash-crowd week  %d jobs, %.4f s mean response, %.1f W\n",
		scenario.Jobs, scenario.MeanResponse, scenario.AvgPower)
}

// measure reports the MB allocated while fn runs, alongside its result.
func measure(fn func() sleepscale.RunReport) (float64, sleepscale.RunReport) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	rep := fn()
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20), rep
}
