package sleepscale_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the corresponding result each iteration at
// QuickConfig resolution), plus micro-benchmarks for the pieces whose cost
// the paper reports — most importantly the single-policy evaluation that
// §4.1 measures at 6.3 ms on an i5/Matlab, which bounds the runtime policy
// manager's overhead.
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"sleepscale"
	"sleepscale/internal/experiments"
	"sleepscale/internal/trace"
)

// ---------------------------------------------------------------------------
// Micro-benchmarks: the §4.1/§5.1.1 overhead claims.

// BenchmarkPolicyEvaluation measures one Algorithm 1 run over N = 10,000
// jobs — the quantity the paper reports as 6.3 ms per policy.
func BenchmarkPolicyEvaluation(b *testing.B) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		b.Fatal(err)
	}
	jobs := stats.Jobs(10000, rand.New(rand.NewSource(1)))
	pol := sleepscale.Policy{Frequency: 0.6, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), spec.FreqExponent)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sleepscale.Simulate(jobs, cfg, sleepscale.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicySelection measures a full §5.1.1 policy-manager decision:
// every (state, frequency) candidate evaluated over the same stream.
func BenchmarkPolicySelection(b *testing.B) {
	spec := sleepscale.DNS()
	qos, err := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	if err != nil {
		b.Fatal(err)
	}
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	mgr.Space.FreqStep = 0.02 // ~35 frequencies × 5 states
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		b.Fatal(err)
	}
	jobs := stats.Jobs(2000, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mgr.Select(jobs, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicySelectionSerial is the parallelism ablation: the same
// decision on a single worker.
func BenchmarkPolicySelectionSerial(b *testing.B) {
	spec := sleepscale.DNS()
	qos, err := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	if err != nil {
		b.Fatal(err)
	}
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	mgr.Space.FreqStep = 0.02
	mgr.Parallelism = 1
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		b.Fatal(err)
	}
	jobs := stats.Jobs(2000, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mgr.Select(jobs, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorSteadyState measures the zero-allocation kernel itself:
// one reused Evaluator scoring one candidate per op over a 10,000-job stream
// — the §5.1.1 inner loop with the per-call setup amortized away. allocs/op
// must stay at 0; CI enforces a budget on it.
func BenchmarkEvaluatorSteadyState(b *testing.B) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		b.Fatal(err)
	}
	jobs := stats.Jobs(10000, rand.New(rand.NewSource(1)))
	pol := sleepscale.Policy{Frequency: 0.6, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), spec.FreqExponent)
	if err != nil {
		b.Fatal(err)
	}
	ev := sleepscale.NewEvaluator(jobs, sleepscale.SimOptions{})
	if _, err := ev.Evaluate(cfg); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdealizedSelection measures the closed-form alternative the
// paper's §5.1.2 observation 3 suggests for runtime use.
func BenchmarkIdealizedSelection(b *testing.B) {
	spec := sleepscale.DNS()
	mu := spec.MaxServiceRate()
	qos, err := sleepscale.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		b.Fatal(err)
	}
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mgr.SelectIdealized(0.3*mu, mu); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefinedIdealizedSelection measures the §5.1.2-observation-3
// path: grid selection plus continuous frequency refinement, entirely from
// closed forms — the microsecond-class alternative to per-policy simulation.
func BenchmarkRefinedIdealizedSelection(b *testing.B) {
	spec := sleepscale.DNS()
	mu := spec.MaxServiceRate()
	qos, err := sleepscale.NewMeanResponseQoS(0.8, mu)
	if err != nil {
		b.Fatal(err)
	}
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	mgr.Space.FreqStep = 0.05
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.SelectIdealizedRefined(0.3*mu, mu); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures raw simulator speed in jobs/op on a
// reused (Reset) engine — the steady-state evaluation path, which must not
// allocate.
func BenchmarkEngineThroughput(b *testing.B) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	jobs := stats.Jobs(100000, rand.New(rand.NewSource(1)))
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sleepscale.NewEngine(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range jobs { // warm the engine's buffers
		if _, err := eng.Process(j); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reset(cfg, 0); err != nil {
			b.Fatal(err)
		}
		for _, j := range jobs {
			if _, err := eng.Process(j); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Streaming workload subsystem benchmarks.

// weekTrace is the streaming benchmarks' fixture: a full 7-day (10080-slot)
// synthetic file-server week.
func weekTrace(b *testing.B) *sleepscale.Trace {
	b.Helper()
	tr := sleepscale.FileServerTrace(7, 1)
	if tr.Len() != 10080 {
		b.Fatalf("week trace has %d slots, want 10080", tr.Len())
	}
	return tr
}

// BenchmarkStreamRunWeekTrace runs the full §6 evaluation loop over a 7-day
// trace with the streaming job loop: B/op is the whole run's footprint and
// stays independent of trace length (the job stream — hundreds of thousands
// of jobs — is never materialized; only chunk and epoch buffers live).
func BenchmarkStreamRunWeekTrace(b *testing.B) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	tr := weekTrace(b)
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	var jobs int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sleepscale.Run(sleepscale.RunnerConfig{
			Stats:        stats,
			FreqExponent: spec.FreqExponent,
			Profile:      sleepscale.Xeon(),
			Trace:        tr,
			EpochSlots:   15,
			Predictor:    sleepscale.NewNaivePredictor(),
			Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		jobs = rep.Jobs
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkStreamSourceSteadyState measures the streaming generator alone:
// one op resets and fully re-drains the 7-day trace-driven source through a
// reused chunk buffer. allocs/op must stay at 0 — CI gates the budget on it,
// the streaming analogue of the evaluator's zero-allocation contract.
func BenchmarkStreamSourceSteadyState(b *testing.B) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	tr := weekTrace(b)
	src, err := sleepscale.NewTraceSource(stats, tr, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]sleepscale.Job, 256)
	var jobs int
	drain := func() int {
		src.Reset(1)
		n := 0
		for {
			k, ok := src.Next(buf)
			n += k
			if !ok {
				return n
			}
		}
	}
	drain() // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs = drain()
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// ---------------------------------------------------------------------------
// Columnar trace & event store benchmarks.

// weekColFile writes the 7-day trace fixture as a column file and opens it
// (memory-mapped on unix).
func weekColFile(b *testing.B) (*sleepscale.Trace, *sleepscale.ColReader) {
	b.Helper()
	tr := weekTrace(b)
	path := filepath.Join(b.TempDir(), "week.col")
	if err := sleepscale.WriteColTrace(tr, path); err != nil {
		b.Fatal(err)
	}
	r, err := sleepscale.OpenCol(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return tr, r
}

// BenchmarkColReplaySteadyState measures the columnar trace source: one op
// resets and fully re-drains the 7-day trace-driven source, slots streaming
// out of the mapped column file. allocs/op must stay at 0 — CI gates the
// budget via BENCH_colstore.json, same contract as the materialized-trace
// source in BenchmarkStreamSourceSteadyState.
func BenchmarkColReplaySteadyState(b *testing.B) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	_, r := weekColFile(b)
	src, err := sleepscale.NewColTraceSource(r, stats, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]sleepscale.Job, 256)
	var jobs int
	drain := func() int {
		src.Reset(1)
		n := 0
		for {
			k, ok := src.Next(buf)
			n += k
			if !ok {
				return n
			}
		}
	}
	drain() // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs = drain()
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkColJobsReplaySteadyState measures recorded-stream replay: one op
// rewinds and re-drains a week's worth of recorded jobs (~244k) straight
// from the mapped column file — no generator, no parsing. allocs/op must
// stay at 0 (gated via BENCH_colstore.json).
func BenchmarkColJobsReplaySteadyState(b *testing.B) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	tr := weekTrace(b)
	live, err := sleepscale.NewTraceSource(stats, tr, 1)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "jobs.col")
	if _, err := sleepscale.RecordJobsCol(live, path); err != nil {
		b.Fatal(err)
	}
	r, err := sleepscale.OpenCol(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	src, err := sleepscale.NewColJobsSource(r)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]sleepscale.Job, 256)
	var jobs int
	drain := func() int {
		src.Reset(1)
		n := 0
		for {
			k, ok := src.Next(buf)
			n += k
			if !ok {
				return n
			}
		}
	}
	drain() // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs = drain()
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkColVsCSVReplay is the format A/B at the ingest layer: load the
// same 7-day trace from buffered CSV and from the column file. The two
// produce bit-identical traces (the equivalence tests pin it), so the ns/op
// ratio is pure format cost; the columnar side must hold a ≥3× lead — CI
// gates its absolute ns/op via BENCH_colstore.json.
func BenchmarkColVsCSVReplay(b *testing.B) {
	tr := weekTrace(b)
	var csvBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		b.Fatal(err)
	}
	colPath := filepath.Join(b.TempDir(), "week.col")
	if err := sleepscale.WriteColTrace(tr, colPath); err != nil {
		b.Fatal(err)
	}
	b.Run("csv", func(b *testing.B) {
		data := csvBuf.Bytes()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := trace.ReadCSV(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != tr.Len() {
				b.Fatalf("read %d slots", got.Len())
			}
		}
	})
	b.Run("col", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := sleepscale.ReadColTrace(colPath)
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != tr.Len() {
				b.Fatalf("read %d slots", got.Len())
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Streamed farm-dispatch benchmarks.

// dispatchStats builds the idealized DNS workload driving the dispatch
// benchmarks' stationary source.
func dispatchStats(b *testing.B) sleepscale.Stats {
	b.Helper()
	stats, err := sleepscale.NewIdealizedStats(sleepscale.DNS())
	if err != nil {
		b.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		b.Fatal(err)
	}
	return stats
}

// BenchmarkFarmDispatchSteadyState measures the streaming k-way dispatch
// loop on a reused farm: one op resets four JSQ-dispatched servers and
// re-serves a rewound stationary stream through the farm-owned chunk
// buffer. allocs/op must stay at 0 — CI gates the budget on it via
// BENCH_farm.json, the farm-level analogue of the evaluator's and stream
// generator's zero-allocation contracts.
func BenchmarkFarmDispatchSteadyState(b *testing.B) {
	stats := dispatchStats(b)
	// The single-server stream at ρ = 0.3 spread over 4 servers: ~10k jobs.
	horizon := stats.Inter.Mean() * 10000
	src, err := sleepscale.NewStationarySource(stats, horizon, 1)
	if err != nil {
		b.Fatal(err)
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		b.Fatal(err)
	}
	f, err := sleepscale.NewFarm(4, cfg, sleepscale.JSQ{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.ServeSource(src); err != nil { // warm engine + chunk buffers
		b.Fatal(err)
	}
	var jobs int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		src.Reset(1)
		n, err := f.ServeSource(src)
		if err != nil {
			b.Fatal(err)
		}
		jobs = n
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkFarmDispatchParallelJSQ measures the time-sliced parallel JSQ
// mode in steady state — routing against the freeAt shadow, concurrent
// per-server simulation on the persistent worker pool, deterministic merge —
// over a 16-server farm: one op resets the farm and re-serves a rewound
// stationary stream through the farm-owned sliced scratch. With workers
// parked between slices and every buffer (slice, routing table, substream
// backing, shadow, cursor, engines) reused, allocs/op must stay at 0 — CI
// gates the budget via BENCH_farm.json (the committed baseline was 191
// allocs / 1.96 MB per op when each call spawned its own goroutines and
// scratch).
func BenchmarkFarmDispatchParallelJSQ(b *testing.B) {
	stats := dispatchStats(b)
	horizon := stats.Inter.Mean() * 40000
	src, err := sleepscale.NewStationarySource(stats, horizon, 1)
	if err != nil {
		b.Fatal(err)
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		b.Fatal(err)
	}
	f, err := sleepscale.NewFarm(16, cfg, sleepscale.JSQ{})
	if err != nil {
		b.Fatal(err)
	}
	opts := sleepscale.FarmDispatchOptions{Parallel: true}
	if _, err := f.ServeSourceSliced(src, opts); err != nil { // warm scratch + pool
		b.Fatal(err)
	}
	f.FinishSummary(f.LastFree()) // warm the percentile scratch too
	var watts float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		src.Reset(1)
		if _, err := f.ServeSourceSliced(src, opts); err != nil {
			b.Fatal(err)
		}
		watts = f.FinishSummary(f.LastFree()).TotalAvgPower
	}
	b.ReportMetric(watts, "watts")
}

// farm10k builds a 10,000-server farm and a rewindable stationary source
// sized so every server sees work, for the fleet-scale dispatch benchmarks.
func farm10k(b *testing.B, disp sleepscale.Dispatcher) (*sleepscale.Farm, interface {
	sleepscale.JobSource
	Reset(seed int64)
}, sleepscale.SimConfig) {
	b.Helper()
	stats := dispatchStats(b)
	// ~40k jobs: enough that the index's busy/idle machinery is exercised,
	// small enough that one op stays interactive.
	horizon := stats.Inter.Mean() * 40000
	src, err := sleepscale.NewStationarySource(stats, horizon, 1)
	if err != nil {
		b.Fatal(err)
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		b.Fatal(err)
	}
	f, err := sleepscale.NewFarm(10000, cfg, disp)
	if err != nil {
		b.Fatal(err)
	}
	return f, src, cfg
}

// BenchmarkFarmDispatch10k measures fleet-scale streamed dispatch: one op
// resets a 10,000-server farm and re-serves a rewound stationary stream
// through the time-sliced parallel mode, with JSQ and LeastWorkLeft routed
// through the O(log k) index. Steady-state allocs/op must stay at 0 — CI
// gates the budget via BENCH_farm.json. Before the index, routing alone was
// a Θ(k) scan per job (~10^8 float compares per op at this scale).
func BenchmarkFarmDispatch10k(b *testing.B) {
	for _, tc := range []struct {
		name string
		disp func() sleepscale.Dispatcher
	}{
		{"jsq", func() sleepscale.Dispatcher { return sleepscale.JSQ{} }},
		{"lwl", func() sleepscale.Dispatcher { return &sleepscale.LeastWorkLeft{} }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f, src, cfg := farm10k(b, tc.disp())
			opts := sleepscale.FarmDispatchOptions{Parallel: true}
			if _, err := f.ServeSourceSliced(src, opts); err != nil { // warm scratch + index + pool
				b.Fatal(err)
			}
			f.FinishSummary(f.LastFree())
			var watts float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Reset(cfg); err != nil {
					b.Fatal(err)
				}
				src.Reset(1)
				if _, err := f.ServeSourceSliced(src, opts); err != nil {
					b.Fatal(err)
				}
				watts = f.FinishSummary(f.LastFree()).TotalAvgPower
			}
			b.ReportMetric(watts, "watts")
		})
	}
}

// BenchmarkFleetCoordinatedEpoch measures the fleet coordinator's
// epoch-boundary machinery at k = 1,000: one op replays a short trace
// through per-server predictions and policy decisions, a 250-server
// staggered-sleep quorum whose duty window rotates every epoch (plans
// capped to ≤C1, the rest re-installed deep), and the sliced serving path
// between switches. With every coordinator buffer — predictions, ping-pong
// phase scratch, memoized capped plans, epoch job/response slices, the
// report's record storage — reused across runs, warm allocs/op must stay
// at 0; CI gates the budget via BENCH_fleet.json.
func BenchmarkFleetCoordinatedEpoch(b *testing.B) {
	const k = 1000
	tr := &sleepscale.Trace{
		Name:        "bench-flat",
		SlotSeconds: 1,
		Utilization: []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
	}
	// ~40k jobs over the 8 s horizon: per-server ρ = 0.5 at full speed.
	rng := rand.New(rand.NewSource(1))
	jobs := make([]sleepscale.Job, 0, 45000)
	for tnow := 0.0; ; {
		tnow += rng.ExpFloat64() / (0.5 * k * 10)
		if tnow >= tr.Duration() {
			break
		}
		jobs = append(jobs, sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / 10})
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	coord, err := sleepscale.NewFleetCoordinator(sleepscale.FleetConfig{
		Servers:      k,
		FreqExponent: 1,
		Profile:      sleepscale.Xeon(),
		Trace:        tr,
		EpochSlots:   2,
		Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
		PerServer:    true,
		NewPredictor: sleepscale.NewNaivePredictor,
		Seed:         1,
		Dispatcher:   sleepscale.JSQ{},
		Quorum:       250,
	})
	if err != nil {
		b.Fatal(err)
	}
	src := sleepscale.SliceSource(jobs).(interface {
		sleepscale.StreamSource
		Reset(seed int64)
	})
	for warm := 0; warm < 2; warm++ { // warm farm, pool, scratch and report storage
		src.Reset(1)
		if _, err := coord.Run(src); err != nil {
			b.Fatal(err)
		}
	}
	var watts float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(1)
		rep, err := coord.Run(src)
		if err != nil {
			b.Fatal(err)
		}
		watts = rep.AvgPower
	}
	b.ReportMetric(watts, "watts")
}

// BenchmarkFaultFailoverRouting measures routing around crashed servers at
// fleet scale: one op resets a 1,000-server farm and re-serves a rewound
// stationary stream twice through compact Select views, alternating between
// two failure patterns (every 10th server down, then the neighboring
// tenth) so the O(log k) routing index rebinds to a churned healthy set
// each serve — the farm-layer path a fleet crash and repair exercises. View
// refills, index rebinds and the sliced serving scratch all reuse warm
// storage: steady-state allocs/op must stay at 0 — CI gates the budget via
// BENCH_fault.json.
func BenchmarkFaultFailoverRouting(b *testing.B) {
	const k = 1000
	stats := dispatchStats(b)
	// ~20k jobs per serve: enough to exercise the index's busy/idle
	// machinery across the down-server holes.
	horizon := stats.Inter.Mean() * 20000
	src, err := sleepscale.NewStationarySource(stats, horizon, 1)
	if err != nil {
		b.Fatal(err)
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		b.Fatal(err)
	}
	f, err := sleepscale.NewFarm(k, cfg, sleepscale.JSQ{})
	if err != nil {
		b.Fatal(err)
	}
	var idxA, idxB []int
	for s := 0; s < k; s++ {
		if s%10 != 0 {
			idxA = append(idxA, s)
		}
		if s%10 != 1 {
			idxB = append(idxB, s)
		}
	}
	opts := sleepscale.FarmDispatchOptions{Parallel: true}
	var viewA, viewB *sleepscale.Farm
	op := func() float64 {
		if err := f.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		var serr error
		if viewA, serr = f.Select(viewA, idxA); serr != nil {
			b.Fatal(serr)
		}
		src.Reset(1)
		if _, serr = viewA.ServeSourceSliced(src, opts); serr != nil {
			b.Fatal(serr)
		}
		if err := f.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		if viewB, serr = f.Select(viewB, idxB); serr != nil {
			b.Fatal(serr)
		}
		src.Reset(2)
		if _, serr = viewB.ServeSourceSliced(src, opts); serr != nil {
			b.Fatal(serr)
		}
		return f.FinishSummary(f.LastFree()).TotalAvgPower
	}
	op() // warm views, index, pool and sliced scratch
	var watts float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		watts = op()
	}
	b.ReportMetric(watts, "watts")
}

// BenchmarkFarmRoute10k is the indexed-vs-linear routing A/B at k = 10,000:
// the same farm, stream and dispatcher, with the O(log k) routing index on
// (default) and off (LinearRouting). The two variants produce bit-identical
// results — the equivalence suite asserts it — so the ns/op ratio is pure
// routing cost. The indexed path must stay well ahead of linear here (the
// acceptance bar is ≥5×); compare the two sub-benchmark timings.
func BenchmarkFarmRoute10k(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts sleepscale.FarmDispatchOptions
	}{
		{"indexed", sleepscale.FarmDispatchOptions{Parallel: true}},
		{"linear", sleepscale.FarmDispatchOptions{Parallel: true, LinearRouting: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f, src, cfg := farm10k(b, sleepscale.JSQ{})
			if _, err := f.ServeSourceSliced(src, tc.opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Reset(cfg); err != nil {
					b.Fatal(err)
				}
				src.Reset(1)
				if _, err := f.ServeSourceSliced(src, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectParallel measures a steady-state §5.1.1 policy-manager
// decision on the persistent worker pool: every (state, frequency) candidate
// scored over the same stream, with the worker set parked between
// selections and each executor reusing a pooled evaluator. The remaining
// allocs/op are the selection's own outputs (the candidate grid and the
// evaluation/error slots) — CI gates a floor on them via BENCH_selection.json.
func BenchmarkSelectParallel(b *testing.B) {
	spec := sleepscale.DNS()
	qos, err := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	if err != nil {
		b.Fatal(err)
	}
	mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
	mgr.Space.FreqStep = 0.02 // ~35 frequencies × 5 states
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		b.Fatal(err)
	}
	jobs := stats.Jobs(2000, rand.New(rand.NewSource(1)))
	if _, _, err := mgr.Select(jobs, 0.3); err != nil { // warm pool + evaluators
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mgr.Select(jobs, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorLMSCUSUM measures one Algorithm 2 step.
func BenchmarkPredictorLMSCUSUM(b *testing.B) {
	lc, err := sleepscale.NewLMSCUSUMPredictor(10, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	tr := sleepscale.EmailStoreTrace(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lc.Predict()
		lc.Observe(tr.Utilization[i%tr.Len()])
	}
}

// ---------------------------------------------------------------------------
// One benchmark per table / figure.

func benchConfig() experiments.Config { return experiments.QuickConfig() }

// BenchmarkTable5 regenerates the workload-statistics table.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Tables()
	}
}

// BenchmarkFigure1 regenerates the §4.2 trade-off curves.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the high-utilization state comparison.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the delayed-entry study.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the frequency-dependence study.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the QoS-bar illustration.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates one representative policy map (DNS, mean
// QoS, ρ_b = 0.8, both models) — the full 16-map figure is minutes of work
// and belongs to cmd/experiments.
func BenchmarkFigure6(b *testing.B) {
	opts := experiments.Figure6Options{
		Workloads: []string{"DNS"},
		QoSKinds:  []string{"mean"},
		RhoBs:     []float64{0.8},
		RhoStep:   0.1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchConfig(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the utilization traces.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates a reduced predictor × interval grid.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(benchConfig(), []string{"LC", "NP"}, []int{5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates the strategy comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates the selected-state distribution.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendixValidation regenerates the closed-form cross-check.
func BenchmarkAppendixValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AppendixValidation(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLesson5 regenerates the sequential-throttle-back ablation.
func BenchmarkLesson5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SequentialLesson(benchConfig(), 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAtomStudy regenerates the Atom-vs-Xeon optimum comparison.
func BenchmarkAtomStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AtomStudy(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationOverProvisioning sweeps α to expose the response/power
// trade of the §5.2.3 guard band.
func BenchmarkAblationOverProvisioning(b *testing.B) {
	for _, alpha := range []float64{0, 0.35, 0.7} {
		b.Run(alphaName(alpha), func(b *testing.B) {
			spec := sleepscale.DNS()
			stats, err := sleepscale.NewFittedStats(spec)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := sleepscale.EmailStoreTrace(1, 1).DailyWindow(120, 300)
			if err != nil {
				b.Fatal(err)
			}
			qos, err := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
				mgr.Space.FreqStep = 0.05
				strat, err := sleepscale.NewSleepScaleStrategy(mgr, 600, alpha)
				if err != nil {
					b.Fatal(err)
				}
				pred, err := sleepscale.NewLMSCUSUMPredictor(10, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := sleepscale.Run(sleepscale.RunnerConfig{
					Stats:        stats,
					FreqExponent: spec.FreqExponent,
					Profile:      sleepscale.Xeon(),
					Trace:        tr,
					EpochSlots:   5,
					Predictor:    pred,
					Strategy:     strat,
					Seed:         1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.AvgPower, "watts")
				b.ReportMetric(rep.MeanResponse*1000, "ms-response")
			}
		})
	}
}

func alphaName(a float64) string {
	switch a {
	case 0:
		return "alpha=0.00"
	case 0.35:
		return "alpha=0.35"
	default:
		return "alpha=0.70"
	}
}

// BenchmarkFarmScaleOut measures the multi-server extension: a fixed
// aggregate load dispatched over k servers (the [6]-style study).
func BenchmarkFarmScaleOut(b *testing.B) {
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	jobs := make([]sleepscale.Job, 40000)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / 4.0
		jobs[i] = sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / 5.0}
	}
	for _, k := range []int{1, 4, 16} {
		name := map[int]string{1: "k=1", 4: "k=4", 16: "k=16"}[k]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sleepscale.RunFarm(k, cfg, sleepscale.JSQ{}, jobs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TotalAvgPower, "watts")
			}
		})
	}
}

// BenchmarkFarmScaleOutRoundRobin measures the parallel preassigned-dispatch
// path (state-independent routing lets servers simulate concurrently).
func BenchmarkFarmScaleOutRoundRobin(b *testing.B) {
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	cfg, err := pol.Config(sleepscale.Xeon(), 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	jobs := make([]sleepscale.Job, 40000)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / 4.0
		jobs[i] = sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / 5.0}
	}
	for _, k := range []int{4, 16} {
		name := map[int]string{4: "k=4", 16: "k=16"}[k]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sleepscale.RunFarm(k, cfg, &sleepscale.RoundRobin{}, jobs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TotalAvgPower, "watts")
			}
		})
	}
}

// BenchmarkMultiCoreSimulate measures the k-core shared-platform simulator
// (the §7 multi-core extension) on a 4-core chip.
func BenchmarkMultiCoreSimulate(b *testing.B) {
	cfg := sleepscale.MultiCoreConfig{
		Cores: 4, Frequency: 1, FreqExponent: 1,
		CPUActivePower: 32.5,
		CoreSleep: []sleepscale.MultiCorePhase{
			{Name: "C6", Power: 3.75, WakeLatency: 1e-3, EnterAfter: 0},
		},
		PlatformActivePower: 120, PlatformIdlePower: 60.5, PlatformSleepPower: 13.1,
		PlatformSleepAfter: 2, PlatformWakeLatency: 1,
	}
	rng := rand.New(rand.NewSource(1))
	jobs := make([]sleepscale.Job, 20000)
	tnow := 0.0
	for i := range jobs {
		tnow += rng.ExpFloat64() / 14.0
		jobs[i] = sleepscale.Job{Arrival: tnow, Size: rng.ExpFloat64() / 5.0}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sleepscale.SimulateMultiCore(jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGuardedTimeout compares idle-management plans on bursty
// arrivals: always-shallow, immediate-deep and the break-even guard.
func BenchmarkAblationGuardedTimeout(b *testing.B) {
	prof := sleepscale.Xeon()
	const f = 0.5
	guarded, err := sleepscale.GuardedPlan(prof, f, sleepscale.OperatingIdle, sleepscale.DeeperSleep)
	if err != nil {
		b.Fatal(err)
	}
	spec := sleepscale.Spec{Name: "bursty", InterArrivalMean: 1.94, InterArrivalCV: 4,
		ServiceMean: 0.194, ServiceCV: 1, FreqExponent: 1}
	stats, err := sleepscale.NewFittedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	jobs := stats.Jobs(20000, rand.New(rand.NewSource(1)))
	for _, tc := range []struct {
		name string
		plan sleepscale.SleepPlan
	}{
		{"shallow", sleepscale.SingleState(sleepscale.OperatingIdle)},
		{"deep", sleepscale.SingleState(sleepscale.DeeperSleep)},
		{"guarded", guarded},
	} {
		b.Run(tc.name, func(b *testing.B) {
			pol := sleepscale.Policy{Frequency: f, Plan: tc.plan}
			cfg, err := pol.Config(prof, 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := sleepscale.Simulate(jobs, cfg, sleepscale.SimOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgPower, "watts")
			}
		})
	}
}

// BenchmarkAblationEvalJobs sweeps the bootstrap stream length N, the
// decision-quality/overhead knob of §5.1.1.
func BenchmarkAblationEvalJobs(b *testing.B) {
	spec := sleepscale.DNS()
	qos, err := sleepscale.NewMeanResponseQoS(0.8, spec.MaxServiceRate())
	if err != nil {
		b.Fatal(err)
	}
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		b.Fatal(err)
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1000, 10000} {
		name := "N=1000"
		if n == 10000 {
			name = "N=10000"
		}
		b.Run(name, func(b *testing.B) {
			jobs := stats.Jobs(n, rand.New(rand.NewSource(1)))
			mgr := sleepscale.NewManager(sleepscale.Xeon(), spec, qos)
			mgr.Space.FreqStep = 0.02
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := mgr.Select(jobs, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Live serving benchmarks (cmd/sleepscaled).

// serveBenchConfig is the daemon runner fixture shared by the serving
// benchmarks: minute telemetry slots, 5-slot epochs, DNS-shaped jobs at
// ρ=0.3, LMS prediction and a fixed deep-sleep plan. The strategy is static
// on purpose: the steady-state gate pins the loop machinery — wire decode,
// job cursoring, engine advance, predictor update, NDJSON emit — at zero
// allocations, while policy-search cost (whose returned evaluation slices
// allocate by design) is measured by the PolicySelection/SelectParallel
// benchmarks with their own explicit floors.
func serveBenchConfig() (sleepscale.LiveConfig, []sleepscale.Job, error) {
	spec := sleepscale.DNS()
	stats, err := sleepscale.NewIdealizedStats(spec)
	if err != nil {
		return sleepscale.LiveConfig{}, nil, err
	}
	stats, err = stats.AtUtilization(0.3)
	if err != nil {
		return sleepscale.LiveConfig{}, nil, err
	}
	const epochSec = 5 * 60.0
	all := stats.Jobs(2000, rand.New(rand.NewSource(7)))
	var jobs []sleepscale.Job
	for _, j := range all {
		if j.Arrival >= epochSec {
			break
		}
		jobs = append(jobs, j)
	}
	pred, err := sleepscale.NewLMSPredictor(10, 0.5)
	if err != nil {
		return sleepscale.LiveConfig{}, nil, err
	}
	pol := sleepscale.Policy{Frequency: 1, Plan: sleepscale.SingleState(sleepscale.DeepSleep)}
	return sleepscale.LiveConfig{
		SlotSeconds:  60,
		EpochSlots:   5,
		FreqExponent: spec.FreqExponent,
		Profile:      sleepscale.Xeon(),
		Predictor:    pred,
		Strategy:     sleepscale.NewStaticStrategy(pol, "static"),
		Seed:         1,
	}, jobs, nil
}

// epochWireFeed synthesizes an endless wire stream of identical epochs in
// place: each rep re-frames the same job set with arrivals offset by one
// epoch, so the stream stays monotonic while the daemon serves it forever.
// Refills reuse one frame buffer — the feed itself is allocation-free after
// the first rep, keeping the 0 allocs/op gate on the serve loop honest.
type epochWireFeed struct {
	jobs    []sleepscale.Job // one epoch's arrivals, within [0, epochSec)
	rho     float64
	slotSec float64
	slots   int

	reps  int // epochs to emit before the end-of-stream marker
	rep   int
	ended bool
	buf   []byte
	pos   int
	onRep func(rep int) // timer control at rep boundaries
}

func (f *epochWireFeed) Read(p []byte) (int, error) {
	if f.pos == len(f.buf) {
		if err := f.refill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += n
	return n, nil
}

func (f *epochWireFeed) refill() error {
	if f.rep == f.reps {
		if f.ended {
			return io.EOF
		}
		f.ended = true
		if f.onRep != nil {
			f.onRep(f.rep)
		}
		f.buf, f.pos = append(f.buf[:0], 'e'), 0
		return nil
	}
	if f.onRep != nil {
		f.onRep(f.rep)
	}
	b := f.buf[:0]
	if f.rep == 0 {
		b = append(b, "SSW1"...)
	}
	off := float64(f.rep) * float64(f.slots) * f.slotSec
	i := 0
	for s := 0; s < f.slots; s++ {
		slotEnd := off + float64(s+1)*f.slotSec
		for i < len(f.jobs) && off+f.jobs[i].Arrival < slotEnd {
			b = append(b, 'j')
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(off+f.jobs[i].Arrival))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.jobs[i].Size))
			i++
		}
		b = append(b, 's')
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.rho))
	}
	f.buf, f.pos = b, 0
	f.rep++
	return nil
}

// BenchmarkServeLoopSteadyState measures the daemon's steady-state serve
// loop: one op decodes, serves and NDJSON-emits one full policy epoch —
// wire frames in, LMS prediction, policy install, engine advance, epoch
// record out. The first epochs are warm-up (buffers grow to their steady
// sizes) and run off the timer; after them the loop must not allocate — CI
// gates allocs/op at 0.
func BenchmarkServeLoopSteadyState(b *testing.B) {
	cfg, jobs, err := serveBenchConfig()
	if err != nil {
		b.Fatal(err)
	}
	srv, err := sleepscale.NewServeServer(sleepscale.ServeConfig{Runner: cfg, Out: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up must outlast every buffer still growing after the first
	// epoch: the 3-epoch event-log window ring and the 10-observation LMS
	// history both reach steady size within 6 epochs.
	const warm = 6
	feed := &epochWireFeed{
		jobs: jobs, rho: 0.3, slotSec: cfg.SlotSeconds, slots: cfg.EpochSlots,
		reps: b.N + warm,
		onRep: func(rep int) {
			switch rep {
			case warm:
				b.ResetTimer()
			case b.N + warm:
				b.StopTimer() // run finalization is not the loop
			}
		},
	}
	b.ReportAllocs()
	if _, done, err := srv.Serve(feed); err != nil || !done {
		b.Fatalf("serve: done=%v err=%v", done, err)
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

// BenchmarkServeCheckpointWrite measures one durable checkpoint: encode the
// live runner's epoch-boundary state, CRC it, write-fsync-rename atomically
// and rotate the previous snapshot.
func BenchmarkServeCheckpointWrite(b *testing.B) {
	cfg, jobs, err := serveBenchConfig()
	if err != nil {
		b.Fatal(err)
	}
	runner, err := sleepscale.NewLiveRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	i := 0
	for s := 0; s < cfg.EpochSlots; s++ {
		slotEnd := float64(s+1) * cfg.SlotSeconds
		for i < len(jobs) && jobs[i].Arrival < slotEnd {
			if err := runner.OfferJob(jobs[i]); err != nil {
				b.Fatal(err)
			}
			i++
		}
		if _, _, err := runner.OfferSlot(0.3); err != nil {
			b.Fatal(err)
		}
	}
	st, err := runner.State()
	if err != nil {
		b.Fatal(err)
	}
	ck := &sleepscale.ServeCheckpoint{
		State:        *st,
		EpochLogRows: 672,
		EpochLogDict: []string{"C0S0", "C6S0(i)"},
	}
	path := filepath.Join(b.TempDir(), "bench.ckpt")
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := sleepscale.WriteServeCheckpoint(path, ck); err != nil {
			b.Fatal(err)
		}
	}
}
