module sleepscale

go 1.24
