package sleepscale

import (
	"io"

	"sleepscale/internal/analytic"
	"sleepscale/internal/colstore"
	"sleepscale/internal/core"
	"sleepscale/internal/dist"
	"sleepscale/internal/farm"
	"sleepscale/internal/fault"
	"sleepscale/internal/fleet"
	"sleepscale/internal/multicore"
	"sleepscale/internal/policy"
	"sleepscale/internal/power"
	"sleepscale/internal/predict"
	"sleepscale/internal/queue"
	"sleepscale/internal/serve"
	"sleepscale/internal/strategy"
	"sleepscale/internal/stream"
	"sleepscale/internal/trace"
	"sleepscale/internal/workload"
)

// Power model (paper §3.1, Tables 1–4).
type (
	// Profile is a CPU + platform power profile.
	Profile = power.Profile
	// CPUState is one of C0(a), C0(i), C1, C3, C6.
	CPUState = power.CPUState
	// PlatformState is one of S0(a), S0(i), S3.
	PlatformState = power.PlatformState
	// State is a combined CPU + platform power state such as C6S3.
	State = power.State
)

// CPU power states (Table 1).
const (
	C0a = power.C0a
	C0i = power.C0i
	C1  = power.C1
	C3  = power.C3
	C6  = power.C6
)

// Platform power states (Table 3).
const (
	S0a = power.S0a
	S0i = power.S0i
	S3  = power.S3
)

// Combined states studied throughout the paper.
var (
	Active        = power.Active
	OperatingIdle = power.OperatingIdle
	Halt          = power.Halt
	Sleep         = power.Sleep
	DeepSleep     = power.DeepSleep
	DeeperSleep   = power.DeeperSleep
)

// Xeon returns the Intel Xeon E5 profile of Table 2.
func Xeon() *Profile { return power.Xeon() }

// Atom returns a netbook-class profile with a small CPU dynamic range
// relative to platform power (§4.2's Atom observations).
func Atom() *Profile { return power.Atom() }

// LowPowerStates lists every combined low-power state, shallow to deep.
func LowPowerStates() []State { return power.LowPowerStates() }

// Queueing simulator (paper §3.2, Algorithm 1).
type (
	// Job is one unit of work: an arrival time and a service demand in
	// seconds of work at f = 1.
	Job = queue.Job
	// SimConfig is a fully resolved operating point for the simulator.
	SimConfig = queue.Config
	// SleepPhase is one resolved low-power phase of a SimConfig.
	SleepPhase = queue.SleepPhase
	// SimResult summarizes one simulation run.
	SimResult = queue.Result
	// SimOptions tunes Simulate.
	SimOptions = queue.Options
	// Engine is the resumable simulator used for trace-driven runs. Its
	// Reset method rewinds it for a fresh run while keeping every internal
	// buffer.
	Engine = queue.Engine
	// Evaluator is the reusable simulation kernel: it scores many candidate
	// configurations against one shared job stream with zero steady-state
	// allocations.
	Evaluator = queue.Evaluator
	// SimSummary is the scalar aggregate an Evaluator returns per candidate.
	SimSummary = queue.Summary
)

// Simulate runs Algorithm 1: serve jobs (sorted by arrival) under cfg,
// starting idle at time zero.
func Simulate(jobs []Job, cfg SimConfig, opts SimOptions) (SimResult, error) {
	return queue.Simulate(jobs, cfg, opts)
}

// SimulateSummary is the pooled one-shot variant of Simulate: the engine and
// its buffers (response sample, sorted percentile scratch) are drawn from
// the evaluator pool, and the scalar SimSummary — bit-identical to
// Simulate's aggregates, never aliasing pooled storage — is returned. Cold
// one-shot calls that need no residency map or raw sample run with zero
// steady-state allocations.
func SimulateSummary(jobs []Job, cfg SimConfig, opts SimOptions) (SimSummary, error) {
	return queue.SimulateSummary(jobs, cfg, opts)
}

// NewEngine returns a resumable simulator starting idle at time start.
func NewEngine(cfg SimConfig, start float64) (*Engine, error) {
	return queue.NewEngine(cfg, start)
}

// NewEvaluator returns a reusable evaluator that scores candidate
// configurations against jobs (sorted by arrival) under opts.
func NewEvaluator(jobs []Job, opts SimOptions) *Evaluator {
	return queue.NewEvaluator(jobs, opts)
}

// Closed forms (paper Appendix).
type (
	// Model is the M/M/1-with-sleep-states analytic model.
	Model = analytic.Model
	// ModelSleepState is the (Pᵢ, τᵢ, wᵢ) triple of one low-power state.
	ModelSleepState = analytic.SleepState
	// MG1Model extends Model to general service-time distributions.
	MG1Model = analytic.MG1Model
)

// Policies and QoS (paper §5.1).
type (
	// Policy pairs a frequency setting with a sleep plan.
	Policy = policy.Policy
	// SleepPlan is an ordered sequence of low-power states with delays.
	SleepPlan = policy.SleepPlan
	// PlanPhase is one step of a SleepPlan.
	PlanPhase = policy.PlanPhase
	// QoS is a quality-of-service constraint.
	QoS = policy.QoS
	// MeanResponseQoS bounds the mean response time.
	MeanResponseQoS = policy.MeanResponseQoS
	// PercentileQoS bounds a response-time percentile.
	PercentileQoS = policy.PercentileQoS
	// PolicySpace is the candidate grid the manager sweeps.
	PolicySpace = policy.Space
	// Evaluation couples a policy with measured metrics and feasibility.
	Evaluation = policy.Evaluation
	// PolicyMetrics is the measured behaviour of one policy.
	PolicyMetrics = policy.Metrics
)

// SingleState returns the plan entering s as soon as the queue empties.
func SingleState(s State) SleepPlan { return policy.SingleState(s) }

// DelayedState returns the plan entering s after tau idle seconds.
func DelayedState(s State, tau float64) SleepPlan { return policy.DelayedState(s, tau) }

// Sequence returns a plan walking the given phases in order.
func Sequence(name string, phases ...PlanPhase) SleepPlan {
	return policy.Sequence(name, phases...)
}

// NoSleep returns the empty plan (DVFS-only idling).
func NoSleep() SleepPlan { return policy.NoSleep() }

// DefaultPlans returns SleepScale's standard five single-state candidates.
func DefaultPlans() []SleepPlan { return policy.DefaultPlans() }

// DefaultSpace returns the five single-state plans on a 0.01 frequency grid.
func DefaultSpace() PolicySpace { return policy.DefaultSpace() }

// NewMeanResponseQoS derives the §5.1.1 budget E[R] ≤ 1/((1−ρb)·µ) from a
// peak design utilization ρb and maximum service rate µ.
func NewMeanResponseQoS(rhoB, mu float64) (MeanResponseQoS, error) {
	return policy.NewMeanResponseQoS(rhoB, mu)
}

// NewPercentileQoS derives the tail analogue: the q-quantile of the baseline
// M/M/1 at ρb and f = 1 becomes the deadline.
func NewPercentileQoS(rhoB, mu, q float64) (PercentileQoS, error) {
	return policy.NewPercentileQoS(rhoB, mu, q)
}

// Workloads (paper Table 5, §6).
type (
	// Spec is a workload summary (means and coefficients of variation).
	Spec = workload.Spec
	// Stats pairs inter-arrival and service-demand distributions.
	Stats = workload.Stats
)

// DNS returns the Table 5 DNS look-up workload.
func DNS() Spec { return workload.DNS() }

// Mail returns the Table 5 email workload.
func Mail() Spec { return workload.Mail() }

// Google returns the Table 5 web-search workload.
func Google() Spec { return workload.Google() }

// Table5 returns all three workloads the paper tabulates.
func Table5() []Spec { return workload.Table5() }

// NewIdealizedStats returns the §4 idealized model: Poisson arrivals and
// exponential service at the spec's means.
func NewIdealizedStats(s Spec) (Stats, error) { return workload.NewIdealizedStats(s) }

// NewFittedStats returns moment-fitted distributions matching the spec's
// means and coefficients of variation.
func NewFittedStats(s Spec) (Stats, error) { return workload.NewFittedStats(s) }

// NewEmpiricalStats synthesizes BigHouse-surrogate empirical CDFs from n
// heavy-tailed samples (deterministic in seed).
func NewEmpiricalStats(s Spec, n int, seed int64) (Stats, error) {
	return workload.NewEmpiricalStats(s, n, seed)
}

// Distribution is a sampleable probability distribution (the type behind
// Stats.Inter and Stats.Size), usable directly in the streaming scenario
// configurations.
type Distribution = dist.Distribution

// FitDistribution moment-matches a distribution to the given mean and
// coefficient of variation — Erlang mixture for Cv < 1, exponential at
// Cv = 1, balanced-means hyperexponential for Cv > 1.
func FitDistribution(mean, cv float64) (Distribution, error) { return dist.FitMeanCV(mean, cv) }

// Streaming workload subsystem: bounded-memory job sources for week-long
// traces and bursty scenarios (see internal/stream's package docs for the
// Source contract).
type (
	// JobSource is the minimal pull interface the streaming simulators
	// drive: chunked delivery of arrival-ordered jobs.
	JobSource = queue.JobSource
	// StreamSource adds Reset(seed) for reproducible replay; every source
	// below implements it.
	StreamSource = stream.Source
	// MMPPConfig parameterizes the on/off Markov-modulated Poisson source.
	MMPPConfig = stream.MMPPConfig
	// FlashCrowdConfig parameterizes the spike-and-decay overlay source.
	FlashCrowdConfig = stream.FlashCrowdConfig
	// DiurnalConfig parameterizes the sinusoidally modulated source.
	DiurnalConfig = stream.DiurnalConfig
)

// NewTraceSource streams the §6 trace-driven job stream: bit-identical to
// Stats.TraceJobs under the same seed, in O(chunk) memory.
func NewTraceSource(st Stats, tr *Trace, seed int64) (StreamSource, error) {
	return stream.Trace(st, tr, seed)
}

// NewCSVTraceSource replays a WriteCSV-format utilization trace row at a
// time through the trace-driven generator; Reset seeks r back to the start.
func NewCSVTraceSource(r io.ReadSeeker, st Stats, slotSeconds float64, seed int64) (StreamSource, error) {
	return stream.CSVTrace(r, st, slotSeconds, seed)
}

// Columnar store: the binary trace/event format of internal/colstore —
// zero-copy mmap replay, append-only epoch logs, block-skipping
// aggregation (see cmd/colq for the query CLI).
type (
	// ColReader is an open column file; Open memory-maps when possible.
	ColReader = colstore.Reader
	// ColWriter is an append-only column-file writer bound to a file.
	ColWriter = colstore.FileWriter
	// ColSchema describes a column file's kind and columns.
	ColSchema = colstore.Schema
	// ColQuery is one aggregation (optionally grouped and filtered) over a
	// column file, skipping blocks from their min/max footers.
	ColQuery = colstore.Query
	// ColFilter is one closed-interval row predicate of a ColQuery.
	ColFilter = colstore.Filter
	// ColResult reports a query's groups and block-skipping statistics.
	ColResult = colstore.Result
)

// OpenCol opens the column file at path for reading, memory-mapped when the
// platform allows, with a ReaderAt fallback otherwise.
func OpenCol(path string) (*ColReader, error) { return colstore.Open(path) }

// CreateCol starts a new column file at path under the given schema.
func CreateCol(path string, s ColSchema) (*ColWriter, error) { return colstore.Create(path, s) }

// AppendCol reopens the column file at path for appending (creating it if
// absent); the schema must match the file's.
func AppendCol(path string, s ColSchema) (*ColWriter, error) { return colstore.Append(path, s) }

// NewColTraceSource replays a KindTrace column file through the
// trace-driven generator — bit-identical to NewCSVTraceSource and
// NewTraceSource for equal seeds, with zero per-slot parsing on a mapped
// file.
func NewColTraceSource(r *ColReader, st Stats, seed int64) (StreamSource, error) {
	return stream.ColTrace(r, st, seed)
}

// NewColJobsSource replays a recorded KindJobs column file bit-exactly.
func NewColJobsSource(r *ColReader) (StreamSource, error) { return stream.NewColJobs(r) }

// RecordJobsCol drains src into a KindJobs column file at path, returning
// the number of jobs recorded; replay it with NewColJobsSource.
func RecordJobsCol(src StreamSource, path string) (int, error) {
	w, err := colstore.Create(path, stream.JobsSchema())
	if err != nil {
		return 0, err
	}
	n, err := stream.RecordJobs(src, w.Writer)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// ReadColTrace materializes a KindTrace column file as a Trace.
func ReadColTrace(path string) (*Trace, error) { return trace.ReadCol(path) }

// WriteColTrace writes a trace as a column file — the binary counterpart of
// Trace.WriteCSV.
func WriteColTrace(t *Trace, path string) error { return t.WriteCol(path) }

// WriteEpochLog appends a run's per-epoch records to the KindEpochs column
// file at path (created if absent) for offline aggregation with cmd/colq.
func WriteEpochLog(path string, epochs []EpochRecord) error {
	return core.WriteEpochLog(path, epochs)
}

// NewStationarySource streams a fixed-rate job stream from the workload
// statistics over [0, horizon) — the streaming analogue of Stats.Jobs.
func NewStationarySource(st Stats, horizon float64, seed int64) (StreamSource, error) {
	return stream.NewStationary(st, horizon, seed)
}

// NewMMPPSource returns the on/off burst source.
func NewMMPPSource(cfg MMPPConfig, seed int64) (StreamSource, error) {
	return stream.NewMMPP(cfg, seed)
}

// NewFlashCrowdSource returns the spike-and-decay source.
func NewFlashCrowdSource(cfg FlashCrowdConfig, seed int64) (StreamSource, error) {
	return stream.NewFlashCrowd(cfg, seed)
}

// NewDiurnalSource returns the sinusoidally modulated source.
func NewDiurnalSource(cfg DiurnalConfig, seed int64) (StreamSource, error) {
	return stream.NewDiurnal(cfg, seed)
}

// MergeSources interleaves sources into one arrival-ordered stream (e.g. a
// trace baseline plus an MMPP burst overlay).
func MergeSources(sources ...StreamSource) StreamSource { return stream.Merge(sources...) }

// ScaleRateSource multiplies a stream's arrival rate by factor (sizes
// untouched).
func ScaleRateSource(src StreamSource, factor float64) (StreamSource, error) {
	return stream.ScaleRate(src, factor)
}

// SpliceSources plays a until time at, then b shifted to start there.
func SpliceSources(a StreamSource, at float64, b StreamSource) (StreamSource, error) {
	return stream.Splice(a, at, b)
}

// SliceSource adapts a materialized job slice (sorted by arrival) to the
// streaming drivers.
func SliceSource(jobs []Job) StreamSource { return stream.Slice(jobs) }

// CollectSource drains a source into a slice with chunk-sized reads
// (chunk < 1 picks the default).
func CollectSource(src StreamSource, chunk int) ([]Job, error) { return stream.Collect(src, chunk) }

// SourceErr reports a source's deferred mid-stream failure, if any.
func SourceErr(src StreamSource) error { return stream.Err(src) }

// SimulateSource is Simulate for streams that are never materialized: peak
// job-buffer memory is one chunk regardless of stream length.
func SimulateSource(src JobSource, cfg SimConfig, opts SimOptions) (SimResult, error) {
	return queue.SimulateSource(src, cfg, opts)
}

// Utilization traces (paper Figure 7).
type (
	// Trace is a per-slot utilization sequence.
	Trace = trace.Trace
)

// EmailStoreTrace generates the email-store trace: wide diurnal range with
// end-of-day backup surges.
func EmailStoreTrace(days int, seed int64) *Trace { return trace.EmailStore(days, seed) }

// FileServerTrace generates the lightly loaded file-server trace.
func FileServerTrace(days int, seed int64) *Trace { return trace.FileServer(days, seed) }

// Predictors (paper §5.2.2, Algorithm 2).
type (
	// Predictor forecasts per-slot utilization.
	Predictor = predict.Predictor
)

// NewNaivePredictor returns the naive-previous predictor.
func NewNaivePredictor() Predictor { return predict.NewNaivePrevious() }

// NewLMSPredictor returns the normalized LMS adaptive filter with history
// depth p (the paper uses 10).
func NewLMSPredictor(p int, step float64) (Predictor, error) { return predict.NewLMS(p, step) }

// NewLMSCUSUMPredictor returns the Algorithm 2 LMS + CUSUM predictor.
func NewLMSCUSUMPredictor(p int, step float64) (Predictor, error) {
	return predict.NewLMSCUSUM(p, step)
}

// NewOfflinePredictor returns the genie that knows the true utilizations.
func NewOfflinePredictor(values []float64) Predictor { return predict.NewOffline(values) }

// NewSeasonalPredictor wraps a base predictor with day-over-day memory of
// the given period in slots (1440 for daily patterns on minute traces) —
// the accuracy improvement §5.2.2 suggests.
func NewSeasonalPredictor(base Predictor, period int) (Predictor, error) {
	return predict.NewSeasonal(base, period)
}

// SleepScale runtime (paper §5).
type (
	// Manager is the policy manager: candidate space + QoS + selection.
	Manager = core.Manager
	// Strategy picks one policy per epoch.
	Strategy = core.Strategy
	// DecideInput is what a Strategy may consult.
	DecideInput = core.DecideInput
	// RunnerConfig describes one trace-driven evaluation run.
	RunnerConfig = core.RunnerConfig
	// RunReport aggregates a trace-driven run.
	RunReport = core.RunReport
	// EpochRecord summarizes one epoch of a run.
	EpochRecord = core.EpochRecord
)

// NewManager returns a policy manager over the default five-state space for
// the given profile, workload and QoS constraint.
func NewManager(prof *Profile, spec Spec, qos QoS) *Manager {
	return &Manager{
		Profile:      prof,
		FreqExponent: spec.FreqExponent,
		Space:        policy.DefaultSpace(),
		QoS:          qos,
	}
}

// Run executes the §6 evaluation loop: epoch-by-epoch prediction, policy
// selection and trace-driven serving. The job stream is streamed from the
// incremental trace generator, so week-long traces run in bounded memory.
func Run(cfg RunnerConfig) (RunReport, error) { return core.Run(cfg) }

// RunSource executes the evaluation loop with jobs pulled from an arbitrary
// streaming source — CSV replay, burst overlays, spliced scenarios — with
// the same epoch accounting as Run.
func RunSource(cfg RunnerConfig, src StreamSource) (RunReport, error) {
	return core.RunSource(cfg, src)
}

// Strategies (paper §6.1).

// NewSleepScaleStrategy returns the full SleepScale strategy: per-epoch
// policy selection over all five states with evalJobs-long bootstrap
// streams and over-provisioning factor alpha (§5.2.3).
func NewSleepScaleStrategy(m *Manager, evalJobs int, alpha float64) (Strategy, error) {
	return strategy.NewSleepScale(m, evalJobs, alpha)
}

// NewFixedSleepStrategy returns SleepScale restricted to one state, e.g.
// SS(C3) in Figure 9.
func NewFixedSleepStrategy(m *Manager, s State, evalJobs int, alpha float64) (Strategy, error) {
	return strategy.NewFixedSleep(m, s, evalJobs, alpha)
}

// NewDVFSOnlyStrategy returns the DVFS-only baseline (never sleeps).
func NewDVFSOnlyStrategy(m *Manager, evalJobs int, alpha float64) (Strategy, error) {
	return strategy.NewDVFSOnly(m, evalJobs, alpha)
}

// NewRaceToHaltStrategy returns the R2H baseline: f = 1, one fixed state
// entered the moment the queue empties.
func NewRaceToHaltStrategy(s State) (Strategy, error) {
	return strategy.NewRaceToHalt(s)
}

// NewAnalyticSleepScaleStrategy returns the simulation-free SleepScale
// variant of §5.1.2 observation 3: per-epoch policy selection from the
// closed forms with continuous frequency refinement — microseconds per
// decision instead of milliseconds, exact only for M/M-like workloads.
func NewAnalyticSleepScaleStrategy(m *Manager, alpha float64) (Strategy, error) {
	return strategy.NewAnalyticSleepScale(m, alpha)
}

// NewStaticStrategy returns a strategy that applies one policy forever.
func NewStaticStrategy(p Policy, label string) Strategy {
	return &strategy.Static{Policy: p, Label: label}
}

// Live serving: SleepScale as a long-running controller (cmd/sleepscaled).
type (
	// LiveConfig configures the incremental live epoch runner.
	LiveConfig = core.LiveConfig
	// LiveRunner advances the §6 epoch loop one job/slot at a time — the
	// batch runners' epoch machine driven by an unbounded telemetry stream.
	LiveRunner = core.LiveRunner
	// LiveState is a LiveRunner's resumable epoch-boundary state.
	LiveState = core.LiveState
	// ServeConfig configures one daemon serve session.
	ServeConfig = serve.Config
	// ServeServer drives a LiveRunner from a wire event stream: jobs and
	// slots in, NDJSON epoch records out, durable checkpoints on the side.
	ServeServer = serve.Server
	// WireWriter encodes the daemon's binary wire protocol.
	WireWriter = serve.WireWriter
	// ServeCheckpoint is a daemon's durable snapshot: the runner state plus
	// the epoch log's row high-water mark and plan dictionary.
	ServeCheckpoint = serve.Checkpoint
	// SlotFeed yields per-slot utilization telemetry incrementally.
	SlotFeed = workload.SlotFeed
)

// NewLiveRunner starts a fresh live epoch runner.
func NewLiveRunner(cfg LiveConfig) (*LiveRunner, error) { return core.NewLiveRunner(cfg) }

// RestoreLiveRunner resumes a live runner from a captured epoch-boundary
// state, bit-identically to a runner that never stopped.
func RestoreLiveRunner(cfg LiveConfig, st *LiveState) (*LiveRunner, error) {
	return core.RestoreLiveRunner(cfg, st)
}

// NewServeServer starts a fresh daemon serve session.
func NewServeServer(cfg ServeConfig) (*ServeServer, error) { return serve.NewServer(cfg) }

// RestoreServeServer resumes a serve session from its checkpoint; replay
// realigns a feed that restarts from the beginning of the stream.
func RestoreServeServer(cfg ServeConfig, replay bool) (*ServeServer, error) {
	return serve.RestoreServer(cfg, replay)
}

// NewWireWriter returns a wire-protocol encoder over w.
func NewWireWriter(w io.Writer) *WireWriter { return serve.NewWireWriter(w) }

// WriteServeCheckpoint atomically writes a daemon checkpoint, rotating the
// previous snapshot to a .prev fallback.
func WriteServeCheckpoint(path string, c *ServeCheckpoint) error {
	return serve.WriteCheckpoint(path, c)
}

// LoadServeCheckpoint reads a daemon checkpoint, falling back to the rotated
// previous snapshot when the primary is damaged.
func LoadServeCheckpoint(path string) (*ServeCheckpoint, error) {
	return serve.LoadCheckpoint(path)
}

// SliceSlots adapts a materialized utilization trace to a SlotFeed.
func SliceSlots(utilization []float64) SlotFeed { return workload.SliceSlots(utilization) }

// FeedWire replays a job source and slot feed as one interleaved wire
// stream — any StreamSource becomes a load generator for the daemon.
func FeedWire(w *WireWriter, src StreamSource, slots SlotFeed, slotSeconds float64) error {
	return serve.Feed(w, src, slots, slotSeconds)
}

// Multi-server extension (paper §7 future work).
type (
	// Farm is a cluster of identical single-server queues.
	Farm = farm.Farm
	// FarmResult aggregates a farm run.
	FarmResult = farm.Result
	// Dispatcher routes arriving jobs across a farm's servers.
	Dispatcher = farm.Dispatcher
	// Preassigner marks dispatchers whose routing is independent of server
	// state; RunFarm simulates their servers in parallel.
	Preassigner = farm.Preassigner
	// VirtualRouter marks state-dependent dispatchers (JSQ) that can route
	// against a lightweight per-server availability shadow, unlocking the
	// time-sliced parallel mode of RunFarmSource.
	VirtualRouter = farm.VirtualRouter
	// AnchoredRouter marks VirtualRouters (LeastWorkLeft) whose shadow
	// routing also tracks per-server idle anchors, so wake-up pricing stays
	// exact across mid-run config switches taken during an idle period.
	AnchoredRouter = farm.AnchoredRouter
	// ConfigRouter marks AnchoredRouters (LeastWorkLeft) that price each
	// server from its own live configuration, which heterogeneous fleets —
	// per-server policies — require for exact routing.
	ConfigRouter = farm.ConfigRouter
	// FarmDispatchOptions tunes RunFarmSource's streaming dispatch loop,
	// including the persistent worker-pool bound of the parallel mode
	// (Workers; 0 uses the whole GOMAXPROCS-sized pool) and the
	// LinearRouting escape hatch that disables the O(log k) routing index.
	FarmDispatchOptions = farm.DispatchOptions
	// FarmSummary is the scalar fleet aggregate of a farm run — what
	// Farm.FinishSummary returns on the steady-state reuse path.
	FarmSummary = farm.Summary
	// RoundRobin, RandomDispatch, JSQ, PowerOfD and LeastWorkLeft are the
	// provided dispatchers. PowerOfD samples D servers and joins the least
	// backlogged; LeastWorkLeft routes to the earliest completion,
	// wake-up latency included. Both are VirtualRouters, so they ride the
	// time-sliced parallel mode bit-identically to sequential dispatch —
	// JSQ and LeastWorkLeft through an O(log k) routing index there.
	RoundRobin     = farm.RoundRobin
	RandomDispatch = farm.Random
	JSQ            = farm.JSQ
	PowerOfD       = farm.PowerOfD
	LeastWorkLeft  = farm.LeastWorkLeft
)

// NewFarm builds a farm of k servers starting idle under cfg.
func NewFarm(k int, cfg SimConfig, disp Dispatcher) (*Farm, error) {
	return farm.New(k, cfg, disp)
}

// RunFarm dispatches a sorted job stream across k servers and aggregates.
func RunFarm(k int, cfg SimConfig, disp Dispatcher, jobs []Job) (FarmResult, error) {
	return farm.Run(k, cfg, disp, jobs)
}

// RunFarmSources runs one server per job source (the routing decided by
// construction), simulating servers in parallel with bounded per-server
// chunk buffers.
func RunFarmSources(cfg SimConfig, srcs []JobSource) (FarmResult, error) {
	return farm.RunSources(cfg, srcs)
}

// RunFarmSource is the streaming k-way dispatch loop: jobs pulled from one
// source in bounded chunks are routed through disp at their arrival
// instants — JSQ sees accurate queue depths — without the stream ever being
// materialized. opts.Parallel enables the time-sliced parallel mode
// (bit-identical to the sequential dispatch) for dispatchers implementing
// Preassigner or VirtualRouter.
func RunFarmSource(k int, cfg SimConfig, disp Dispatcher, src JobSource, opts FarmDispatchOptions) (FarmResult, error) {
	return farm.DispatchSource(k, cfg, disp, src, opts)
}

// FarmRunReport aggregates a trace-driven epoch run over a farm.
type FarmRunReport = core.FarmRunReport

// RunFarmEpochs executes the §6 evaluation loop over a streamed farm: one
// strategy decision per epoch applied fleet-wide, jobs routed through the
// dispatcher at their arrival instants, farm-wide delay statistics feeding
// the over-provisioning guard. With k = 1 it matches RunSource bit for bit.
func RunFarmEpochs(cfg RunnerConfig, servers int, disp Dispatcher, src StreamSource) (FarmRunReport, error) {
	return core.RunFarmSource(cfg, servers, disp, src)
}

// Fleet coordination: the layer above RunFarmEpochs that owns per-server
// (configuration, policy) state — per-server strategy decisions, staggered
// sleep quorums with deep-sleep rotation, and horizontal scaling that parks
// and unparks whole servers. In shared mode with no quorum and no parking a
// coordinated run is bit-identical to RunFarmEpochs.
type (
	// FleetConfig describes one coordinated fleet run: fleet size, trace,
	// strategy, predictor (shared or per-server factory), dispatcher, and
	// the quorum/park coordination knobs.
	FleetConfig = fleet.Config
	// FleetCoordinator drives the epoch-boundary decide→serve→observe cycle
	// over a dispatched farm, one (configuration, policy) pair per server.
	FleetCoordinator = fleet.Coordinator
	// FleetReport aggregates a coordinated run: the farm-wide RunReport plus
	// per-server summaries, per-epoch fleet rollups, peak power, jobs per
	// joule and an energy-proportionality score.
	FleetReport = fleet.Report
	// FleetEpoch is the fleet-level rollup of one epoch: active/parked
	// split, quorum-shallow count, unpark wake-ups and mean frequency.
	FleetEpoch = fleet.Epoch
)

// NewFleetCoordinator validates cfg and builds a reusable coordinator.
func NewFleetCoordinator(cfg FleetConfig) (*FleetCoordinator, error) { return fleet.New(cfg) }

// WriteFleetEpochLog appends a coordinated run's per-epoch records — core
// epoch records zipped with their fleet rollups — to the column file at path.
func WriteFleetEpochLog(path string, rep *FleetReport) error { return fleet.WriteEpochLog(path, rep) }

// WriteFleetServerLog appends a coordinated run's per-server summaries to
// the column file at path.
func WriteFleetServerLog(path string, rep *FleetReport) error { return fleet.WriteServerLog(path, rep) }

// Fault injection: deterministic crash/repair timelines driven through the
// fleet coordinator via FleetConfig.Faults. Crashed servers lose their jobs
// in flight (re-dispatched under a bounded retry policy), stop consuming
// energy, and rejoin cold when repaired; an empty timeline is bit-identical
// to no injection at all.
type (
	// FaultEvent is one crash or repair at an exact simulated instant.
	FaultEvent = fault.Event
	// FaultKind distinguishes crash from repair.
	FaultKind = fault.Kind
	// FaultSource is a replayable fault-event stream, the failure-side
	// sibling of StreamSource.
	FaultSource = fault.Source
	// FaultSchedule is a scripted, validated event list implementing
	// FaultSource.
	FaultSchedule = fault.Schedule
	// FaultRenewalConfig parameterizes the seeded MTBF/MTTR renewal process.
	FaultRenewalConfig = fault.RenewalConfig
	// FaultRenewal draws per-server exponential crash/repair timelines,
	// deterministic per seed and independent across servers.
	FaultRenewal = fault.Renewal
	// FaultRetryPolicy bounds failover re-dispatch of jobs lost in flight.
	FaultRetryPolicy = fault.RetryPolicy
)

// Fault event kinds.
const (
	FaultCrash  = fault.Crash
	FaultRepair = fault.Repair
)

// NewFaultSchedule validates and wraps a scripted event list.
func NewFaultSchedule(events []FaultEvent) (*FaultSchedule, error) { return fault.NewSchedule(events) }

// ParseFaultSchedule parses the "<time> <server> crash|repair" schedule
// format ('#' comments, blank lines ignored).
func ParseFaultSchedule(text string) (*FaultSchedule, error) { return fault.ParseSchedule(text) }

// NewFaultRenewal builds a seeded per-server MTBF/MTTR renewal timeline.
func NewFaultRenewal(cfg FaultRenewalConfig, seed int64) (*FaultRenewal, error) {
	return fault.NewRenewal(cfg, seed)
}

// WriteFaultLog appends applied fault events (e.g. FleetReport.FaultEvents)
// to the column file at path under the fault-log schema.
func WriteFaultLog(path string, events []FaultEvent) error { return fault.WriteLog(path, events) }

// Multi-core extension (paper §7 future work): one chip, k cores, a shared
// FCFS queue, per-core CPU sleep states and a platform gated by the union
// of core activity.
type (
	// MultiCoreConfig describes a k-core chip sharing one platform.
	MultiCoreConfig = multicore.Config
	// MultiCorePhase is one per-core CPU sleep phase.
	MultiCorePhase = multicore.Phase
	// MultiCoreResult summarizes a multi-core run.
	MultiCoreResult = multicore.Result
	// MultiCoreSimulator is the resumable k-core engine.
	MultiCoreSimulator = multicore.Simulator
)

// SimulateMultiCore runs a sorted job stream through a k-core chip.
func SimulateMultiCore(jobs []Job, cfg MultiCoreConfig) (MultiCoreResult, error) {
	return multicore.Simulate(jobs, cfg)
}

// NewMultiCore returns a resumable k-core simulator idle at time start.
func NewMultiCore(cfg MultiCoreConfig, start float64) (*MultiCoreSimulator, error) {
	return multicore.New(cfg, start)
}

// ErlangC returns the M/M/k probability of queueing with offered load
// a = λ/µ — the textbook validation target for multi-core runs.
func ErlangC(k int, a float64) (float64, error) { return multicore.ErlangC(k, a) }

// MMkMeanResponse returns the M/M/k mean response time.
func MMkMeanResponse(k int, lambda, mu float64) (float64, error) {
	return multicore.MMkMeanResponse(k, lambda, mu)
}

// Guarded sleep (§4.2 lesson 3, guarded power gating [23]).

// BreakEvenDelay returns the idle duration at which entering deep pays off
// over staying in shallow at frequency f.
func BreakEvenDelay(prof *Profile, f float64, shallow, deep State) (float64, error) {
	return policy.BreakEvenDelay(prof, f, shallow, deep)
}

// GuardedPlan returns shallow→deep with the deep entry delayed by the
// break-even duration — 2-competitive on every idle period.
func GuardedPlan(prof *Profile, f float64, shallow, deep State) (SleepPlan, error) {
	return policy.GuardedPlan(prof, f, shallow, deep)
}
